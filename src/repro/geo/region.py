"""Regions and sub-regions.

The paper assumes a geographical region ``R`` over which pollution is
sensed, partitioned by the model cover into sub-regions ``R_1 .. R_O``
(Figure 1).  Ad-KMN's partition is a *Voronoi* partition induced by the
cluster centroids, so a :class:`SubRegion` is identified by its centroid
and owns the indices of the tuples assigned to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.geo.coords import BoundingBox, euclidean


@dataclass(frozen=True)
class Region:
    """The sensed region ``R``: a named bounding box in the local frame."""

    name: str
    bounds: BoundingBox

    def contains(self, x: float, y: float) -> bool:
        return self.bounds.contains_point(x, y)


@dataclass
class SubRegion:
    """One cell ``R_k`` of the Voronoi partition induced by centroid ``µ_k``.

    ``member_indices`` index into the window ``W_c`` the partition was
    computed from; they are what the per-region model is fitted on.
    """

    centroid: Tuple[float, float]
    member_indices: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.member_indices)

    def distance_to(self, x: float, y: float) -> float:
        return euclidean(self.centroid[0], self.centroid[1], x, y)


@dataclass(frozen=True)
class RegionGrid:
    """A fixed ``nx x ny`` grid of regions tiling the sensed region ``R``.

    This is the *sharding* partition (as opposed to the Voronoi partition
    of :class:`SubRegion`, which the model cover induces per window): every
    point of the plane is owned by exactly one cell, so a tuple stream can
    be split into disjoint per-region shards.  Points outside ``bounds``
    are owned by the nearest edge cell — edge cells own unbounded slabs —
    which keeps ownership total without a catch-all shard.

    Cells are numbered row-major: cell ``(i, j)`` (column ``i``, row
    ``j``) has index ``j * nx + i``.
    """

    bounds: BoundingBox
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid must have at least one cell per axis")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ValueError("region grid needs a non-degenerate bounding box")

    @classmethod
    def for_shard_count(cls, bounds: BoundingBox, n: int) -> "RegionGrid":
        """The most square ``nx x ny`` factorisation of ``n`` cells.

        Prefers wider-than-tall when ``bounds`` is wider than tall (and
        vice versa) so cells stay as close to square as the factorisation
        allows; a prime ``n`` degrades to a ``1 x n`` strip.
        """
        if n < 1:
            raise ValueError("need at least one shard")
        a = int(math.isqrt(n))
        while n % a:
            a -= 1
        b = n // a  # a <= b
        if bounds.width >= bounds.height:
            return cls(bounds, nx=b, ny=a)
        return cls(bounds, nx=a, ny=b)

    @property
    def n_regions(self) -> int:
        return self.nx * self.ny

    def region(self, k: int) -> Region:
        """Cell ``k`` as a :class:`Region` (its finite core rectangle)."""
        if not 0 <= k < self.n_regions:
            raise ValueError(f"no region {k} in a {self.nx}x{self.ny} grid")
        i, j = k % self.nx, k // self.nx
        w = self.bounds.width / self.nx
        h = self.bounds.height / self.ny
        return Region(
            name=f"cell-{i},{j}",
            bounds=BoundingBox(
                self.bounds.min_x + i * w,
                self.bounds.min_y + j * h,
                self.bounds.min_x + (i + 1) * w,
                self.bounds.min_y + (j + 1) * h,
            ),
        )

    def _cells_x(self, xs: np.ndarray) -> np.ndarray:
        fx = (np.asarray(xs, dtype=np.float64) - self.bounds.min_x) / self.bounds.width
        return np.clip(np.floor(fx * self.nx).astype(np.int64), 0, self.nx - 1)

    def _cells_y(self, ys: np.ndarray) -> np.ndarray:
        fy = (np.asarray(ys, dtype=np.float64) - self.bounds.min_y) / self.bounds.height
        return np.clip(np.floor(fy * self.ny).astype(np.int64), 0, self.ny - 1)

    def shards_of(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Owning cell index per position (vectorised, total)."""
        return self._cells_y(ys) * self.nx + self._cells_x(xs)

    def shard_of(self, x: float, y: float) -> int:
        """Owning cell index of one position."""
        return int(self.shards_of(np.array([x]), np.array([y]))[0])

    def disk_cell_ranges(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-query cell index ranges ``(i_lo, i_hi, j_lo, j_hi)`` that a
        radius-``radius`` disk can draw owned tuples from.

        Ownership cells are monotone in each coordinate, so any tuple
        within the disk around ``(x, y)`` is owned by a cell inside the
        index rectangle of the disk's bounding square.  The rectangle is a
        (slightly conservative) superset near cell corners — harmless for
        scatter-gather, since a shard with no in-radius tuples contributes
        an empty partial.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        return (
            self._cells_x(xs - radius),
            self._cells_x(xs + radius),
            self._cells_y(ys - radius),
            self._cells_y(ys + radius),
        )

    def disk_shards(self, x: float, y: float, radius: float) -> np.ndarray:
        """Cell indices a disk query must be scattered to, vectorised.

        The row-major flattening of the :meth:`disk_cell_ranges` index
        rectangle (rows outer, columns inner — the same order the old
        double loop produced).
        """
        i_lo, i_hi, j_lo, j_hi = self.disk_cell_ranges(
            np.array([x]), np.array([y]), radius
        )
        ii = np.arange(int(i_lo[0]), int(i_hi[0]) + 1, dtype=np.int64)
        jj = np.arange(int(j_lo[0]), int(j_hi[0]) + 1, dtype=np.int64)
        return (jj[:, None] * self.nx + ii[None, :]).ravel()

    def shards_overlapping_disk(self, x: float, y: float, radius: float) -> List[int]:
        """Cell indices a disk query must be scattered to (superset-safe).

        List-returning compatibility wrapper over :meth:`disk_shards`.
        """
        return self.disk_shards(x, y, radius).tolist()

    def disks_shard_mask(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> np.ndarray:
        """Batch scatter mask: ``mask[q, k]`` is True when query ``q``'s
        disk can draw owned tuples from cell ``k``.

        One vectorised evaluation of the :meth:`disk_cell_ranges`
        rectangles for a whole heatmap grid / query batch — the geometry
        half of the plan-time scatter-pruning pass.  Shape
        ``(len(xs), n_regions)``, columns in row-major cell order.
        """
        i_lo, i_hi, j_lo, j_hi = self.disk_cell_ranges(xs, ys, radius)
        i = np.arange(self.nx, dtype=np.int64)
        j = np.arange(self.ny, dtype=np.int64)
        in_i = (i_lo[:, None] <= i) & (i <= i_hi[:, None])  # (n, nx)
        in_j = (j_lo[:, None] <= j) & (j <= j_hi[:, None])  # (n, ny)
        return (in_j[:, :, None] & in_i[:, None, :]).reshape(len(in_i), -1)


class RefinedRegionGrid:
    """A :class:`RegionGrid` with one level of per-cell refinement.

    Each base cell is either *unsplit* (one shard owning the whole cell)
    or split into ``sx x sy`` sub-tiles (``sx, sy`` in {1, 2}, at least
    one of them 2) each owned by its own shard — the hot-region split the
    adaptive shard manager performs when one downtown cell saturates its
    shard.  Refinement is expressed on the *fine lattice* of
    ``2*nx x 2*ny`` half-cells: every shard owns an axis-aligned
    rectangle of fine cells (a full 2x2 block when unsplit; a 1x1, 2x1
    or 1x2 block when split), so ownership stays total and monotone per
    coordinate and the scatter-pruning geometry
    (:meth:`disks_shard_mask`) remains one vectorised interval-overlap
    test.

    Ownership is *exactly* consistent with the base grid: for any point,
    ``floor(f * 2n) // 2 == floor(f * n)`` (including the clamped edge
    slabs), so an all-unsplit refined grid routes every tuple to the same
    shard index the base grid would — the invariant that makes the
    pre-split layout byte-identical to the static grid it refines.

    **Stable shard ids**: splitting a cell keeps the cell's shard id for
    the first sub-tile and assigns the extra sub-tiles ids from a
    free-list of retired slots (growing the id space only when no holes
    exist); merging frees the extra ids back.  Unaffected shards never
    renumber, so their caches, stamps and exports stay warm across a
    rebalance.  A retired slot is a *hole*: it owns no geometry, answers
    no queries and is skipped by every mask until a later split reuses
    it.

    Instances are immutable; :meth:`split_cell` / :meth:`merge_cell`
    return new grids.
    """

    def __init__(
        self,
        base: RegionGrid,
        cell_splits: Tuple[Tuple[int, int], ...],
        cell_shards: Tuple[Tuple[int, ...], ...],
        n_slots: int,
    ) -> None:
        if len(cell_splits) != base.n_regions or len(cell_shards) != base.n_regions:
            raise ValueError("refinement tables must cover every base cell")
        self.base = base
        self.cell_splits = cell_splits
        self.cell_shards = cell_shards
        self._n_slots = n_slots
        nx, ny = base.nx, base.ny
        owner = np.full((2 * ny, 2 * nx), -1, dtype=np.int64)
        rects = np.full((n_slots, 4), -1, dtype=np.int64)  # i0, i1, j0, j1
        active = np.zeros(n_slots, dtype=bool)
        for k, ids in enumerate(cell_shards):
            sx, sy = cell_splits[k]
            if sx not in (1, 2) or sy not in (1, 2) or len(ids) != sx * sy:
                raise ValueError(f"cell {k}: bad split {sx}x{sy} for {ids}")
            i, j = k % nx, k // nx
            wi, wj = 2 // sx, 2 // sy
            for r in range(sy):
                for q in range(sx):
                    sid = ids[r * sx + q]
                    if not 0 <= sid < n_slots or active[sid]:
                        raise ValueError(f"cell {k}: shard id {sid} invalid")
                    i0, j0 = 2 * i + q * wi, 2 * j + r * wj
                    owner[j0 : j0 + wj, i0 : i0 + wi] = sid
                    rects[sid] = (i0, i0 + wi - 1, j0, j0 + wj - 1)
                    active[sid] = True
        owner.flags.writeable = False
        rects.flags.writeable = False
        active.flags.writeable = False
        self._owner = owner
        self._rects = rects
        self._active = active

    @classmethod
    def refine(cls, base: RegionGrid) -> "RefinedRegionGrid":
        """The all-unsplit refinement of ``base`` (identical routing)."""
        n = base.n_regions
        return cls(
            base,
            tuple((1, 1) for _ in range(n)),
            tuple((k,) for k in range(n)),
            n,
        )

    # -- topology ----------------------------------------------------------

    @property
    def bounds(self) -> BoundingBox:
        return self.base.bounds

    @property
    def n_regions(self) -> int:
        """Total shard-id slots, retired holes included (holes own no
        geometry; they keep unaffected shard indices stable)."""
        return self._n_slots

    @property
    def active_shards(self) -> np.ndarray:
        """Boolean mask over slots: True where the slot owns geometry."""
        return self._active

    def is_split(self, k: int) -> bool:
        return len(self.cell_shards[k]) > 1

    def cell_of_shard(self, s: int) -> int:
        """Base cell index shard ``s``'s tile lies in."""
        if not 0 <= s < self._n_slots or not self._active[s]:
            raise ValueError(f"shard {s} is not an active slot")
        i0, _, j0, _ = self._rects[s]
        return (int(j0) // 2) * self.base.nx + int(i0) // 2

    def region(self, k: int) -> Region:
        """Shard ``k``'s tile as a :class:`Region` (finite core rect)."""
        if not 0 <= k < self._n_slots or not self._active[k]:
            raise ValueError(f"shard {k} is not an active slot")
        i0, i1, j0, j1 = (int(v) for v in self._rects[k])
        b = self.base.bounds
        fw = b.width / (2 * self.base.nx)
        fh = b.height / (2 * self.base.ny)
        return Region(
            name=f"tile-{i0},{j0}",
            bounds=BoundingBox(
                b.min_x + i0 * fw,
                b.min_y + j0 * fh,
                b.min_x + (i1 + 1) * fw,
                b.min_y + (j1 + 1) * fh,
            ),
        )

    # -- ownership ---------------------------------------------------------

    def _fcells_x(self, xs: np.ndarray) -> np.ndarray:
        b, n2 = self.base.bounds, 2 * self.base.nx
        fx = (np.asarray(xs, dtype=np.float64) - b.min_x) / b.width
        return np.clip(np.floor(fx * n2).astype(np.int64), 0, n2 - 1)

    def _fcells_y(self, ys: np.ndarray) -> np.ndarray:
        b, n2 = self.base.bounds, 2 * self.base.ny
        fy = (np.asarray(ys, dtype=np.float64) - b.min_y) / b.height
        return np.clip(np.floor(fy * n2).astype(np.int64), 0, n2 - 1)

    def shards_of(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Owning shard per position (vectorised, total)."""
        return self._owner[self._fcells_y(ys), self._fcells_x(xs)]

    def shard_of(self, x: float, y: float) -> int:
        return int(self.shards_of(np.array([x]), np.array([y]))[0])

    # -- scatter geometry --------------------------------------------------

    def disks_shard_mask(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> np.ndarray:
        """Batch scatter mask over *shard slots*: ``mask[q, s]`` is True
        when query ``q``'s disk can draw owned tuples from shard ``s``'s
        tile.  Same superset-safe semantics as
        :meth:`RegionGrid.disks_shard_mask` — the disk's bounding square
        resolved to a fine-lattice index rectangle, tested for overlap
        against each shard's tile rectangle.  Holes are always False.
        For an all-unsplit refinement the mask equals the base grid's
        column for column."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        fi_lo = self._fcells_x(xs - radius)[:, None]
        fi_hi = self._fcells_x(xs + radius)[:, None]
        fj_lo = self._fcells_y(ys - radius)[:, None]
        fj_hi = self._fcells_y(ys + radius)[:, None]
        r = self._rects
        return (
            self._active
            & (r[:, 0] <= fi_hi)
            & (r[:, 1] >= fi_lo)
            & (r[:, 2] <= fj_hi)
            & (r[:, 3] >= fj_lo)
        )

    def disk_shards(self, x: float, y: float, radius: float) -> np.ndarray:
        """Shard slots a disk query must be scattered to (superset-safe)."""
        return np.flatnonzero(
            self.disks_shard_mask(np.array([x]), np.array([y]), radius)[0]
        )

    def shards_overlapping_disk(self, x: float, y: float, radius: float) -> List[int]:
        return self.disk_shards(x, y, radius).tolist()

    # -- refinement transitions --------------------------------------------

    def _free_slots(self) -> List[int]:
        return [s for s in range(self._n_slots) if not self._active[s]]

    def split_cell(self, k: int, sx: int = 2, sy: int = 2) -> "RefinedRegionGrid":
        """A new grid with base cell ``k`` split into ``sx x sy`` tiles.

        The cell's current shard id stays on the first (bottom-left)
        sub-tile; the extra tiles take retired slot ids first, then grow
        the slot space.  Returns the new grid — the caller (the shard
        router) re-routes the rows.
        """
        if not 0 <= k < self.base.n_regions:
            raise ValueError(f"no base cell {k}")
        if self.is_split(k):
            raise ValueError(f"cell {k} is already split (one level only)")
        if sx not in (1, 2) or sy not in (1, 2) or sx * sy < 2:
            raise ValueError("split factors must be 2x2, 1x2 or 2x1")
        holes = self._free_slots()
        n_slots = self._n_slots
        ids = [self.cell_shards[k][0]]
        for _ in range(sx * sy - 1):
            if holes:
                ids.append(holes.pop(0))
            else:
                ids.append(n_slots)
                n_slots += 1
        splits = list(self.cell_splits)
        shards = list(self.cell_shards)
        splits[k] = (sx, sy)
        shards[k] = tuple(ids)
        return RefinedRegionGrid(self.base, tuple(splits), tuple(shards), n_slots)

    def merge_cell(self, k: int) -> "RefinedRegionGrid":
        """A new grid with base cell ``k``'s tiles re-merged into one
        shard (the lowest of the tile ids, for determinism); the other
        tile ids become retired holes."""
        if not 0 <= k < self.base.n_regions:
            raise ValueError(f"no base cell {k}")
        if not self.is_split(k):
            raise ValueError(f"cell {k} is not split")
        keep = min(self.cell_shards[k])
        splits = list(self.cell_splits)
        shards = list(self.cell_shards)
        splits[k] = (1, 1)
        shards[k] = (keep,)
        return RefinedRegionGrid(self.base, tuple(splits), tuple(shards), self._n_slots)


def nearest_subregion(subregions: Sequence[SubRegion], x: float, y: float) -> int:
    """Index of the sub-region whose centroid is nearest to ``(x, y)``.

    This is the O(O) scan the model-cover query processor performs for
    every query tuple; O (the number of models) is small by construction,
    which is why model-cover querying beats scanning/indexing raw tuples.
    """
    if not subregions:
        raise ValueError("no subregions")
    best = 0
    best_d = subregions[0].distance_to(x, y)
    for k in range(1, len(subregions)):
        d = subregions[k].distance_to(x, y)
        if d < best_d:
            best_d = d
            best = k
    return best
