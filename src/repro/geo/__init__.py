"""Geographic substrate: coordinates, distances, bounding boxes, regions.

EnviroMeter operates over a geographical region ``R`` (central Lausanne in
the paper).  Everything downstream — the synthetic dataset, the spatial
indexes, the Ad-KMN clustering — works in a local metric coordinate frame,
so this package provides the WGS84 <-> local-metre projection and the basic
planar geometry primitives.
"""

from repro.geo.coords import (
    EARTH_RADIUS_M,
    BoundingBox,
    LocalProjection,
    euclidean,
    haversine_m,
)
from repro.geo.region import Region, RegionGrid, SubRegion
from repro.geo.streetgraph import StreetGraph, StreetPath, lausanne_street_graph

__all__ = [
    "EARTH_RADIUS_M",
    "BoundingBox",
    "LocalProjection",
    "euclidean",
    "haversine_m",
    "Region",
    "RegionGrid",
    "SubRegion",
    "StreetGraph",
    "StreetPath",
    "lausanne_street_graph",
]
