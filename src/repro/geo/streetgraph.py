"""Street-graph substrate.

OpenSense buses follow the city's street network, and EnviroMeter users
move along it too.  This module models central Lausanne as a weighted
graph (networkx): nodes are junctions with local-frame coordinates,
edges are street segments weighted by length.  It provides shortest-path
routing, which the dataset generator and examples use to derive
realistic trajectories instead of hand-drawn polylines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from repro.geo.coords import euclidean

Point = Tuple[float, float]


@dataclass(frozen=True)
class StreetPath:
    """A shortest path through the street graph."""

    nodes: Tuple[str, ...]
    waypoints: Tuple[Point, ...]
    length_m: float


class StreetGraph:
    """A named, weighted street network in the local frame."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # -- construction -----------------------------------------------------

    def add_junction(self, name: str, x: float, y: float) -> None:
        if name in self._graph:
            raise ValueError(f"junction {name!r} already exists")
        self._graph.add_node(name, x=float(x), y=float(y))

    def add_street(self, a: str, b: str) -> float:
        """Connect two junctions; the edge weight is their distance."""
        for name in (a, b):
            if name not in self._graph:
                raise KeyError(f"no junction named {name!r}")
        if a == b:
            raise ValueError("cannot connect a junction to itself")
        length = euclidean(*self.position(a), *self.position(b))
        self._graph.add_edge(a, b, length=length)
        return length

    # -- queries ------------------------------------------------------------

    @property
    def junction_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def street_count(self) -> int:
        return self._graph.number_of_edges()

    def junctions(self) -> Tuple[str, ...]:
        return tuple(sorted(self._graph.nodes))

    def position(self, name: str) -> Point:
        try:
            data = self._graph.nodes[name]
        except KeyError:
            raise KeyError(f"no junction named {name!r}") from None
        return data["x"], data["y"]

    def nearest_junction(self, x: float, y: float) -> str:
        """Junction closest to an arbitrary position (GPS fix snapping)."""
        if not self._graph:
            raise ValueError("empty street graph")
        return min(
            self._graph.nodes,
            key=lambda n: euclidean(x, y, *self.position(n)),
        )

    def shortest_path(self, a: str, b: str) -> StreetPath:
        """Dijkstra shortest path by street length."""
        try:
            nodes = nx.shortest_path(self._graph, a, b, weight="length")
        except nx.NodeNotFound:
            raise KeyError(f"unknown junction in ({a!r}, {b!r})") from None
        except nx.NetworkXNoPath:
            raise ValueError(f"no street route from {a!r} to {b!r}") from None
        waypoints = tuple(self.position(n) for n in nodes)
        length = sum(
            self._graph.edges[u, v]["length"] for u, v in zip(nodes, nodes[1:])
        )
        return StreetPath(nodes=tuple(nodes), waypoints=waypoints, length_m=length)

    def route_via(self, stops: Sequence[str]) -> StreetPath:
        """Concatenated shortest paths through an ordered stop list —
        how a bus line is laid over the street network."""
        if len(stops) < 2:
            raise ValueError("a route needs at least two stops")
        all_nodes: List[str] = []
        total = 0.0
        for a, b in zip(stops, stops[1:]):
            leg = self.shortest_path(a, b)
            if all_nodes:
                all_nodes.extend(leg.nodes[1:])
            else:
                all_nodes.extend(leg.nodes)
            total += leg.length_m
        waypoints = tuple(self.position(n) for n in all_nodes)
        return StreetPath(nodes=tuple(all_nodes), waypoints=waypoints, length_m=total)

    def is_connected(self) -> bool:
        return bool(self._graph) and nx.is_connected(self._graph)


def lausanne_street_graph() -> StreetGraph:
    """A 20-junction abstraction of central Lausanne's street network.

    Junction coordinates live in the same local frame as the pollution
    field; the two bus lines of :func:`repro.data.routes.lausanne_routes`
    correspond to `route_via` traversals of this graph.
    """
    g = StreetGraph()
    junctions = {
        "ouchy": (2600.0, 300.0),
        "lakeside-e": (3600.0, 500.0),
        "lakeside-w": (1500.0, 450.0),
        "gare": (1600.0, 1300.0),
        "gare-east": (2300.0, 1400.0),
        "flon": (2000.0, 1900.0),
        "st-francois": (2450.0, 1800.0),
        "centre": (3000.0, 2200.0),
        "bel-air": (1700.0, 2100.0),
        "chauderon": (1300.0, 2600.0),
        "beaulieu": (1000.0, 3000.0),
        "nw-terminus": (700.0, 3500.0),
        "tunnel": (2700.0, 2700.0),
        "sallaz": (3800.0, 2500.0),
        "bessieres": (3300.0, 2350.0),
        "ne-mid": (4600.0, 2800.0),
        "ne-terminus": (5300.0, 3100.0),
        "industrial": (4600.0, 1000.0),
        "vigie": (1000.0, 1100.0),
        "w-terminus": (300.0, 900.0),
    }
    for name, (x, y) in junctions.items():
        g.add_junction(name, x, y)
    streets = [
        ("w-terminus", "vigie"),
        ("vigie", "gare"),
        ("gare", "gare-east"),
        ("gare-east", "st-francois"),
        ("st-francois", "centre"),
        ("centre", "bessieres"),
        ("bessieres", "sallaz"),
        ("sallaz", "ne-mid"),
        ("ne-mid", "ne-terminus"),
        ("ouchy", "lakeside-w"),
        ("ouchy", "lakeside-e"),
        ("lakeside-w", "gare"),
        ("lakeside-e", "industrial"),
        ("industrial", "ne-mid"),
        ("ouchy", "gare-east"),
        ("gare-east", "flon"),
        ("flon", "bel-air"),
        ("flon", "st-francois"),
        ("bel-air", "chauderon"),
        ("chauderon", "beaulieu"),
        ("beaulieu", "nw-terminus"),
        ("bel-air", "tunnel"),
        ("tunnel", "centre"),
        ("tunnel", "bessieres"),
    ]
    for a, b in streets:
        g.add_street(a, b)
    return g
