"""Ad-KMN: adaptive k-means with model-error-driven splits (Section 2.1).

The algorithm, following the paper's description and Figure 2:

1. Compute two centroids ``µ1, µ2`` by standard k-means on the positions
   in the window ``W_c``.
2. Partition the window's tuples by nearest centroid into regions
   ``R_1 .. R_k``; fit one model per region; compute each region's
   *approximation error* (average percentage error relative to the
   pollutant's normal range — footnote 1).
3. For every region whose error exceeds the user threshold ``τn``, add a
   new centroid **at the position with the worst error** in that region
   (Figure 2 marks these as "positions with worst error"), then
   *re-estimate all centroids* with Lloyd iterations.
4. Repeat until every region meets ``τn`` or a safety bound is reached.

The result carries the fitted :class:`~repro.core.cover.ModelCover` plus
diagnostics (per-region errors, iteration count) used by tests and the
τn ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cover import ModelCover
from repro.core.kmeans import kmeans, lloyd
from repro.data.tuples import TupleBatch
from repro.models.base import Model, model_factory
from repro.models.errors import CO2_NORMAL_RANGE_PPM, approximation_error_pct


@dataclass(frozen=True)
class AdKMNConfig:
    """Tuning knobs of the adaptive loop.

    Defaults mirror the paper's evaluation: τn = 2 %, linear models,
    starting from k = 2 centroids.
    """

    tau_n_pct: float = 2.0
    family: str = "linear"
    initial_k: int = 2
    max_models: int = 64
    max_rounds: int = 32
    min_split_size: int = 16
    seed: int = 0
    normal_range: Tuple[float, float] = CO2_NORMAL_RANGE_PPM

    def __post_init__(self) -> None:
        if self.tau_n_pct <= 0:
            raise ValueError("tau_n must be positive")
        if self.initial_k < 1:
            raise ValueError("initial_k must be at least 1")
        if self.max_models < self.initial_k:
            raise ValueError("max_models must be >= initial_k")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if self.min_split_size < 2:
            raise ValueError("min_split_size must be at least 2")


@dataclass
class AdKMNResult:
    """A fitted cover plus adaptivity diagnostics."""

    cover: ModelCover
    region_errors_pct: List[float]
    labels: np.ndarray
    rounds: int
    converged: bool

    @property
    def worst_error_pct(self) -> float:
        return max(self.region_errors_pct)


def _fit_regions(
    batch: TupleBatch,
    centroids: np.ndarray,
    labels: np.ndarray,
    config: AdKMNConfig,
) -> Tuple[List[Model], List[float], List[int]]:
    """Fit one model per region and compute its approximation error.

    Returns (models, errors, worst_tuple_index_per_region); regions are
    ordered by centroid index.  Empty regions get the globally fitted
    model and zero error (they have no tuples to approximate).
    """
    fit = model_factory(config.family)
    models: List[Model] = []
    errors: List[float] = []
    worst_idx: List[int] = []
    global_model: Optional[Model] = None
    for k in range(len(centroids)):
        member_idx = np.flatnonzero(labels == k)
        if not len(member_idx):
            if global_model is None:
                global_model = fit(batch)
            models.append(global_model)
            errors.append(0.0)
            worst_idx.append(-1)
            continue
        members = batch.take(member_idx)
        model = fit(members)
        predicted = model.predict_batch(members.t, members.x, members.y)
        err = approximation_error_pct(
            predicted, members.s, normal_range=config.normal_range
        )
        abs_err = np.abs(predicted - members.s)
        models.append(model)
        errors.append(err)
        worst_idx.append(int(member_idx[int(np.argmax(abs_err))]))
    return models, errors, worst_idx


def fit_adkmn(
    batch: TupleBatch,
    config: Optional[AdKMNConfig] = None,
    valid_until: Optional[float] = None,
    window_c: int = 0,
) -> AdKMNResult:
    """Run Ad-KMN on one window of raw tuples and return the model cover.

    ``valid_until`` defaults to the window's last timestamp — the cover is
    valid for the window it models; the server overrides this with the
    window deadline ``(c+1)H`` when building covers on a live stream.
    """
    cfg = config or AdKMNConfig()
    if not len(batch):
        raise ValueError("cannot fit Ad-KMN on an empty window")
    points = batch.positions()
    n = len(batch)
    k0 = min(cfg.initial_k, n)
    km = kmeans(points, k0, seed=cfg.seed)
    centroids = km.centroids
    labels = km.labels

    rounds = 0
    converged = False
    models, errors, worst_idx = _fit_regions(batch, centroids, labels, cfg)
    max_models = min(cfg.max_models, n)
    for rounds in range(1, cfg.max_rounds + 1):
        sizes = np.bincount(labels, minlength=len(centroids))
        # A region too small to yield two trainable children is final even
        # if over threshold: splitting it would produce regions whose
        # models are pinned down by sensor noise alone.
        over = [
            k
            for k, e in enumerate(errors)
            if e > cfg.tau_n_pct and sizes[k] >= cfg.min_split_size
        ]
        if not over:
            converged = all(e <= cfg.tau_n_pct for e in errors)
            break
        if len(centroids) >= max_models:
            break
        # Introduce one new centroid per over-threshold region, at that
        # region's worst-error position (Figure 2), respecting the cap.
        new_seeds = []
        for k in over:
            if len(centroids) + len(new_seeds) >= max_models:
                break
            idx = worst_idx[k]
            if idx < 0:
                continue
            new_seeds.append(points[idx])
        if not new_seeds:
            break
        centroids = np.vstack([centroids, np.asarray(new_seeds)])
        # Re-estimate all centroids (the paper: "re-estimate all the
        # centroids"), then refit the per-region models.
        km = lloyd(points, centroids)
        centroids = km.centroids
        labels = km.labels
        models, errors, worst_idx = _fit_regions(batch, centroids, labels, cfg)

    t_n = valid_until if valid_until is not None else float(np.max(batch.t))
    cover = ModelCover(
        centroids=centroids,
        models=models,
        valid_until=t_n,
        family=cfg.family,
        window_c=window_c,
    )
    return AdKMNResult(
        cover=cover,
        region_errors_pct=errors,
        labels=labels,
        rounds=rounds,
        converged=converged,
    )
