"""Standard k-means on 2-D positions, from scratch.

Ad-KMN starts from "two centroids µ1 and µ2 computed by executing the
standard k-means algorithm using the positions (x_i, y_i) from W_c"
(Section 2.1), and re-runs Lloyd iterations every time it adds a centroid.
This module is that primitive: Lloyd's algorithm with k-means++ seeding,
deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Converged centroids and the induced partition."""

    centroids: np.ndarray      # (k, 2)
    labels: np.ndarray         # (n,) int
    inertia: float             # sum of squared distances to assigned centroid
    iterations: int

    @property
    def k(self) -> int:
        return len(self.centroids)


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Label of the nearest centroid for every point."""
    d2 = (
        (points[:, None, 0] - centroids[None, :, 0]) ** 2
        + (points[:, None, 1] - centroids[None, :, 1]) ** 2
    )
    return np.argmin(d2, axis=1)


def _inertia(points: np.ndarray, centroids: np.ndarray, labels: np.ndarray) -> float:
    diff = points - centroids[labels]
    return float(np.sum(diff * diff))


def kmeans_pp_seeds(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
    n = len(points)
    seeds = np.empty((k, 2), dtype=np.float64)
    first = int(rng.integers(n))
    seeds[0] = points[first]
    d2 = np.sum((points - seeds[0]) ** 2, axis=1)
    for j in range(1, k):
        total = float(np.sum(d2))
        if total <= 0.0:
            # All remaining points coincide with a seed; duplicate it.
            seeds[j:] = seeds[j - 1]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        seeds[j] = points[choice]
        d2 = np.minimum(d2, np.sum((points - seeds[j]) ** 2, axis=1))
    return seeds


def lloyd(
    points: np.ndarray,
    centroids: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd iterations from explicit starting centroids.

    Empty clusters are re-seeded at the point currently farthest from its
    assigned centroid, so the returned centroid count always equals the
    requested one (as long as there are at least k distinct points).
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.array(centroids, dtype=np.float64, copy=True)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    if centroids.ndim != 2 or centroids.shape[1] != 2:
        raise ValueError("centroids must have shape (k, 2)")
    if len(centroids) > len(points):
        raise ValueError("more centroids than points")
    labels = _assign(points, centroids)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        moved = 0.0
        for j in range(len(centroids)):
            members = points[labels == j]
            if len(members):
                new_c = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-served point.
                d2 = np.sum((points - centroids[labels]) ** 2, axis=1)
                new_c = points[int(np.argmax(d2))]
            moved = max(moved, float(np.sum((new_c - centroids[j]) ** 2)))
            centroids[j] = new_c
        labels = _assign(points, centroids)
        if moved <= tol * tol:
            break
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=_inertia(points, centroids, labels),
        iterations=iterations,
    )


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 50,
    n_init: int = 1,
    tol: float = 1e-6,
) -> KMeansResult:
    """Full k-means: k-means++ seeding followed by Lloyd iterations.

    ``n_init`` restarts keep the best-inertia run, as in standard
    implementations.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > len(points):
        raise ValueError(f"k={k} exceeds the number of points ({len(points)})")
    if n_init < 1:
        raise ValueError("n_init must be at least 1")
    rng = np.random.default_rng(seed)
    best: Optional[KMeansResult] = None
    for _ in range(n_init):
        seeds = kmeans_pp_seeds(points, k, rng)
        result = lloyd(points, seeds, max_iter=max_iter, tol=tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
