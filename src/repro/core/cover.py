"""The model cover ``(t_n, µ, M)``.

A :class:`ModelCover` is the multi-model abstraction of Section 2.1: the
cluster centroids ``µ = (µ1 .. µO)``, one fitted model per centroid, and
the validity deadline ``t_n``.  It is simultaneously

* the query-processing structure (nearest-centroid lookup + model
  evaluation, Section 2.2 "Model Cover" method),
* the row stored in the ``model_cover`` table (via :meth:`to_blob`), and
* the payload of the model-request response the server ships to
  model-cache clients (Section 2.3) — coefficients, centroids and ``t_n``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.models.base import Model, rebuild_model

_MAGIC = b"EMCV"
_VERSION = 1


@dataclass
class ModelCover:
    """A set of models responsible for sub-regions of R (Figure 1)."""

    centroids: np.ndarray        # (O, 2) float64
    models: List[Model]
    valid_until: float           # t_n
    family: str
    window_c: int = 0

    def __post_init__(self) -> None:
        self.centroids = np.asarray(self.centroids, dtype=np.float64)
        if self.centroids.ndim != 2 or self.centroids.shape[1] != 2:
            raise ValueError("centroids must have shape (O, 2)")
        if len(self.centroids) != len(self.models):
            raise ValueError(
                f"{len(self.centroids)} centroids but {len(self.models)} models"
            )
        if not len(self.models):
            raise ValueError("a model cover needs at least one model")

    # -- querying -------------------------------------------------------------

    @property
    def size(self) -> int:
        """O, the number of sub-regions/models."""
        return len(self.models)

    def nearest_index(self, x: float, y: float) -> int:
        """Index of the centroid µ* nearest to ``(x, y)``.

        A plain O(O) scan: O is small by construction (the whole point of
        the cover), so anything fancier would cost more than it saves.
        """
        cx = self.centroids[:, 0]
        cy = self.centroids[:, 1]
        d2 = (cx - x) ** 2 + (cy - y) ** 2
        return int(np.argmin(d2))

    def model_for(self, x: float, y: float) -> Model:
        """The model M* responsible for position ``(x, y)``."""
        return self.models[self.nearest_index(x, y)]

    def predict(self, t: float, x: float, y: float) -> float:
        """Interpolated sensor value at one query tuple — the model-cover
        query method of Section 2.2."""
        return self.model_for(x, y).predict(t, x, y)

    def predict_batch(
        self, t: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Vectorised prediction (groups queries by owning model)."""
        t = np.asarray(t, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if not len(x):
            return np.empty(0, dtype=np.float64)
        d2 = (
            (x[:, None] - self.centroids[None, :, 0]) ** 2
            + (y[:, None] - self.centroids[None, :, 1]) ** 2
        )
        # argmin keeps the first minimum, matching the scalar scan's
        # strict-< tie-break in nearest_index / ModelCoverProcessor.
        owner = np.argmin(d2, axis=1)
        out = np.empty(len(x), dtype=np.float64)
        hits = np.bincount(owner, minlength=self.size)
        for k in np.flatnonzero(hits):
            mask = owner == k
            out[mask] = self.models[k].predict_batch(t[mask], x[mask], y[mask])
        return out

    def is_valid_at(self, t: float) -> bool:
        """Whether a query at time ``t`` may still use this cover
        (the client-side ``t_l <= t_n`` check of Section 2.3)."""
        return t <= self.valid_until

    # -- serialization ---------------------------------------------------------

    def to_blob(self) -> bytes:
        """Binary encoding: what the ``model_cover`` table stores and what
        the model-request response carries on the wire."""
        family_b = self.family.encode("utf-8")
        parts = [
            _MAGIC,
            struct.pack("<HB", _VERSION, len(family_b)),
            family_b,
            struct.pack("<Iqd", self.size, self.window_c, self.valid_until),
        ]
        for (cx, cy), model in zip(self.centroids, self.models):
            coeffs = model.coefficients()
            parts.append(struct.pack("<ddI", float(cx), float(cy), len(coeffs)))
            parts.append(struct.pack(f"<{len(coeffs)}d", *coeffs))
        return b"".join(parts)

    @classmethod
    def from_blob(cls, blob: bytes) -> "ModelCover":
        """Decode a blob produced by :meth:`to_blob`.

        Raises ``ValueError`` on any structural corruption rather than
        returning a partially-decoded cover.
        """
        if blob[:4] != _MAGIC:
            raise ValueError("not a model-cover blob")
        offset = 4
        version, fam_len = struct.unpack_from("<HB", blob, offset)
        offset += struct.calcsize("<HB")
        if version != _VERSION:
            raise ValueError(f"unsupported cover version {version}")
        family = blob[offset : offset + fam_len].decode("utf-8")
        offset += fam_len
        size, window_c, valid_until = struct.unpack_from("<Iqd", blob, offset)
        offset += struct.calcsize("<Iqd")
        if size == 0:
            raise ValueError("cover blob declares zero models")
        centroids = np.empty((size, 2), dtype=np.float64)
        models: List[Model] = []
        for k in range(size):
            cx, cy, n_coeffs = struct.unpack_from("<ddI", blob, offset)
            offset += struct.calcsize("<ddI")
            coeffs = struct.unpack_from(f"<{n_coeffs}d", blob, offset)
            offset += 8 * n_coeffs
            centroids[k] = (cx, cy)
            models.append(rebuild_model(family, coeffs))
        if offset != len(blob):
            raise ValueError(
                f"trailing bytes in cover blob ({len(blob) - offset} extra)"
            )
        return cls(
            centroids=centroids,
            models=models,
            valid_until=valid_until,
            family=family,
            window_c=window_c,
        )

    def wire_size_bytes(self) -> int:
        """Size of the serialized cover — the model-cache response payload
        measured in the bandwidth experiment (Figure 7(b))."""
        return len(self.to_blob())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ModelCover(O={self.size}, family={self.family!r}, "
            f"t_n={self.valid_until:.0f})"
        )
