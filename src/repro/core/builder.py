"""Window-by-window cover construction over a tuple stream.

The server maintains one cover per window ``W_c`` (Figure 1: the
``model_cover`` table).  :class:`CoverBuilder` wraps the adaptive fitting
method, stamps each cover with its window's validity deadline ``t_n``,
and (optionally) persists the serialized blob into a database.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

from repro.core.adkmn import AdKMNConfig, AdKMNResult, fit_adkmn
from repro.core.cover import ModelCover
from repro.data.tuples import TupleBatch
from repro.data.windows import WindowSpec, iter_windows, window
from repro.storage.engine import Database

FitFunction = Callable[..., AdKMNResult]


class CoverBuilder:
    """Builds and caches model covers for windows of a tuple stream.

    ``mode`` selects the windowing convention:

    * ``"count"`` — H counted in raw tuples, as in the paper's evaluation
      ("window size H from 40 to 240 raw tuples");
    * ``"time"``  — H in seconds, as in the formal definition of W_c.

    ``validity_margin_s`` extends each cover's deadline ``t_n`` past the
    window's data: the server declares a cover valid until it expects the
    next one to be ready, which is what lets model-cache clients answer
    future queries locally (Section 2.3).  With the default margin of 0 a
    count-mode cover is valid exactly through its own window.
    """

    def __init__(
        self,
        h: float,
        config: Optional[AdKMNConfig] = None,
        mode: str = "count",
        fit: FitFunction = fit_adkmn,
        validity_margin_s: float = 0.0,
    ) -> None:
        if mode not in ("count", "time"):
            raise ValueError(f"mode must be 'count' or 'time', got {mode!r}")
        if h <= 0:
            raise ValueError("window length H must be positive")
        if validity_margin_s < 0:
            raise ValueError("validity margin must be non-negative")
        self.h = h
        self.mode = mode
        self.config = config or AdKMNConfig()
        self._fit = fit
        self.validity_margin_s = validity_margin_s
        # Two-level: window c -> content stamp -> result.  Callers that
        # track window content epochs (the concurrent serving path) pass
        # a stamp so a cover fitted on an older prefix of a still-open
        # window is never served for a newer one; stamp-less callers get
        # the historical per-window cache (stamp None).  The outer level
        # keeps per-window invalidation O(1) on the ingest path.
        self._cache: Dict[int, Dict[Optional[int], AdKMNResult]] = {}
        self.fit_count = 0
        self.cache_hits = 0

    def _window(self, batch: TupleBatch, c: int) -> Tuple[TupleBatch, float]:
        """The window's tuples and its validity deadline t_n."""
        if self.mode == "count":
            w = window(batch, c, int(self.h))
            # For count windows the natural deadline is the last timestamp
            # in the window, pushed out by the validity margin.
            t_n = (float(w.t[-1]) if len(w) else 0.0) + self.validity_margin_s
            return w, t_n
        spec = WindowSpec(self.h)
        return spec.select(batch, c), spec.valid_until(c) + self.validity_margin_s

    def build(
        self, batch: TupleBatch, c: int, stamp: Optional[int] = None
    ) -> AdKMNResult:
        """Fit (or return the cached) cover for window ``c``.

        ``stamp`` is an optional content epoch identifying the window's
        data (see :meth:`repro.storage.engine.StorageSnapshot.window_epoch`);
        a cached cover is only reused for the same stamp, so two epochs of
        a growing open window never share a fit.  ``fit_count`` /
        ``cache_hits`` track how often the fitter actually ran versus how
        often a cached cover was reused — the replay tests use them to
        prove sealed windows are never refit."""
        by_stamp = self._cache.get(c)
        if by_stamp is not None and stamp in by_stamp:
            self.cache_hits += 1
            return by_stamp[stamp]
        w, t_n = self._window(batch, c)
        if not len(w):
            raise ValueError(f"window {c} is empty")
        result = self._fit(w, config=self.config, valid_until=t_n, window_c=c)
        self.fit_count += 1
        self._cache.setdefault(c, {})[stamp] = result
        return result

    def cached(self, c: int, stamp: Optional[int] = None) -> Optional[AdKMNResult]:
        """The cached fit for ``(window, stamp)``, without fitting."""
        by_stamp = self._cache.get(c)
        return by_stamp.get(stamp) if by_stamp is not None else None

    def cover(self, batch: TupleBatch, c: int) -> ModelCover:
        return self.build(batch, c).cover

    def build_all(self, batch: TupleBatch) -> Iterator[AdKMNResult]:
        """Fit covers for every (count-mode) window of the batch."""
        if self.mode != "count":
            raise ValueError("build_all is defined for count-mode windows")
        for c, _ in iter_windows(batch, int(self.h)):
            yield self.build(batch, c)

    def persist(self, db: Database, batch: TupleBatch, c: int) -> int:
        """Build window ``c``'s cover and store its blob in ``db``."""
        result = self.build(batch, c)
        return db.store_cover_blob(
            c, result.cover.valid_until, result.cover.to_blob()
        )

    def invalidate(self, c: Optional[int] = None) -> None:
        """Drop cached covers (all of them, or one window's)."""
        if c is None:
            self._cache.clear()
        else:
            self._cache.pop(c, None)

    def invalidate_many(self, windows: Iterable[int]) -> None:
        """Drop the cached covers of several windows — the ingest path
        invalidates exactly the windows a new batch touched, O(1) per
        window.  (Stamped entries are already self-invalidating — a
        grown window carries a new stamp — so this is garbage
        collection, not correctness.)"""
        for c in windows:
            self._cache.pop(c, None)

    def cached_windows(self) -> Tuple[int, ...]:
        """Window indices currently held in the cover cache (sorted)."""
        return tuple(sorted(self._cache))
