"""The paper's primary contribution: adaptive model covers.

* :mod:`repro.core.kmeans` — standard k-means (from scratch), the starting
  point of Ad-KMN;
* :mod:`repro.core.adkmn` — **Ad-KMN**, adaptive k-means that splits a
  cluster whenever its model's approximation error exceeds τn (Section
  2.1, Figure 2);
* :mod:`repro.core.cover` — the :class:`ModelCover` ``(t_n, µ, M)``
  abstraction with binary serialization (what the server stores in the
  ``model_cover`` table and ships to model-cache clients);
* :mod:`repro.core.builder` — builds covers window-by-window over a tuple
  stream;
* :mod:`repro.core.variants` — alternative adaptive candidates (Ad-GRID
  quadtree and Ad-SPLIT bisection), standing in for "the best results
  among many candidates we designed".
"""

from repro.core.adkmn import AdKMNConfig, AdKMNResult, fit_adkmn
from repro.core.builder import CoverBuilder
from repro.core.confidence import ConfidenceCover, ConfidentValue
from repro.core.cover import ModelCover
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.variants import fit_adgrid, fit_adsplit

__all__ = [
    "AdKMNConfig",
    "AdKMNResult",
    "fit_adkmn",
    "CoverBuilder",
    "ConfidenceCover",
    "ConfidentValue",
    "ModelCover",
    "KMeansResult",
    "kmeans",
    "fit_adgrid",
    "fit_adsplit",
]
