"""Per-prediction confidence — an extension beyond the paper.

The paper's related work ([7], probabilistic queries over imprecise
data) motivates attaching uncertainty to interpolated values.  The model
cover makes this nearly free: each sub-region's model has a residual
distribution over its training tuples, so every prediction can carry the
owning region's residual standard deviation as an error bar.  Regions
with sparse or noisy data — the geo-temporal skew the paper worries
about — automatically report wider intervals.

This stays server-side: the wire format of the cover (Section 2.3) is
unchanged, matching the paper's protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.adkmn import AdKMNResult
from repro.data.tuples import TupleBatch

_Z_FOR_95 = 1.959963984540054


@dataclass(frozen=True)
class ConfidentValue:
    """An interpolated value with its uncertainty."""

    value: float
    std: float
    region: int
    support: int

    def interval(self, z: float = _Z_FOR_95) -> Tuple[float, float]:
        """Symmetric confidence interval (default ~95 %)."""
        if z < 0:
            raise ValueError("z must be non-negative")
        return self.value - z * self.std, self.value + z * self.std


class ConfidenceCover:
    """A model cover annotated with per-region residual spread."""

    def __init__(self, result: AdKMNResult, window: TupleBatch) -> None:
        if len(result.labels) != len(window):
            raise ValueError("labels must correspond to the fitted window")
        self._cover = result.cover
        self._stds: List[float] = []
        self._supports: List[int] = []
        for k in range(self._cover.size):
            idx = np.flatnonzero(result.labels == k)
            self._supports.append(int(len(idx)))
            if len(idx) < 2:
                # A region pinned to <2 tuples constrains nothing; report
                # the window-wide spread rather than a fake zero.
                self._stds.append(float(np.std(window.s)))
                continue
            members = window.take(idx)
            model = self._cover.models[k]
            residual = members.s - model.predict_batch(members.t, members.x, members.y)
            # ddof: the linear family spends 3 degrees of freedom.
            dof = max(len(idx) - 3, 1)
            self._stds.append(float(math.sqrt(float(np.sum(residual**2)) / dof)))

    @property
    def cover(self):
        return self._cover

    def region_std(self, k: int) -> float:
        if not 0 <= k < self._cover.size:
            raise IndexError(f"region {k} out of range")
        return self._stds[k]

    def predict(self, t: float, x: float, y: float) -> ConfidentValue:
        """Interpolate with an error bar from the owning region."""
        k = self._cover.nearest_index(x, y)
        return ConfidentValue(
            value=self._cover.models[k].predict(t, x, y),
            std=self._stds[k],
            region=k,
            support=self._supports[k],
        )

    def worst_region(self) -> int:
        """The region with the widest residual spread — where the server
        should send the next sensing resources (the utility-driven
        sensing angle of the OpenSense project)."""
        return int(np.argmax(self._stds))
