"""Alternative adaptive model-creation candidates.

The paper: "the adaptive method, called adaptive k-means or Ad-KMN, gave
us the best results among many candidates we designed [6]".  To make that
comparison reproducible we implement two natural candidates from the same
design space; the ablation benchmark pits them against Ad-KMN.

* **Ad-GRID** — adaptive quadtree: recursively quarter any cell whose
  model exceeds τn.  Region boundaries are axis-aligned instead of
  Voronoi, so it over-partitions along diagonal pollution gradients.
* **Ad-SPLIT** — greedy bisection: repeatedly split the worst region in
  two with a local 2-means, without ever re-estimating other centroids.
  Cheaper per round than Ad-KMN but the partition drifts from a true
  Voronoi fit.

Both return a standard :class:`ModelCover` (centroid = cell/region centre)
so every downstream component — query processing, caching, serialization —
works with them unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.adkmn import AdKMNConfig, AdKMNResult, _fit_regions
from repro.core.cover import ModelCover
from repro.core.kmeans import kmeans
from repro.data.tuples import TupleBatch
from repro.models.base import model_factory
from repro.models.errors import approximation_error_pct


def _region_error(batch: TupleBatch, idx: np.ndarray, config: AdKMNConfig):
    """Fit a model on the tuples at ``idx``; return (model, error_pct)."""
    fit = model_factory(config.family)
    members = batch.take(idx)
    model = fit(members)
    predicted = model.predict_batch(members.t, members.x, members.y)
    err = approximation_error_pct(predicted, members.s, normal_range=config.normal_range)
    return model, err


def fit_adgrid(
    batch: TupleBatch,
    config: Optional[AdKMNConfig] = None,
    valid_until: Optional[float] = None,
    window_c: int = 0,
) -> AdKMNResult:
    """Adaptive quadtree cover: quarter cells until each meets τn."""
    cfg = config or AdKMNConfig()
    if not len(batch):
        raise ValueError("cannot fit Ad-GRID on an empty window")
    min_x, max_x = float(np.min(batch.x)), float(np.max(batch.x))
    min_y, max_y = float(np.min(batch.y)), float(np.max(batch.y))
    # Guard against degenerate extents (all tuples on one vertical road).
    span_x = max(max_x - min_x, 1.0)
    span_y = max(max_y - min_y, 1.0)

    max_models = min(cfg.max_models, len(batch))
    # Work list of (cell bounds, member indices); finished cells collect in
    # ``done`` with their fitted model and error.
    all_idx = np.arange(len(batch))
    work: List[Tuple[Tuple[float, float, float, float], np.ndarray]] = [
        ((min_x, min_y, min_x + span_x, min_y + span_y), all_idx)
    ]
    done: List[Tuple[Tuple[float, float, float, float], np.ndarray, object, float]] = []
    rounds = 0
    while work and len(work) + len(done) < max_models and rounds < cfg.max_rounds * 8:
        rounds += 1
        bounds, idx = work.pop(0)
        model, err = _region_error(batch, idx, cfg)
        # Splitting replaces one cell with up to four, a net growth of
        # three; refuse the split when it could exceed the model cap.
        would_overflow = len(work) + len(done) + 4 > max_models
        if err <= cfg.tau_n_pct or len(idx) <= 4 or would_overflow:
            done.append((bounds, idx, model, err))
            continue
        x0, y0, x1, y1 = bounds
        mx, my = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        quads = [
            (x0, y0, mx, my),
            (mx, y0, x1, my),
            (x0, my, mx, y1),
            (mx, my, x1, y1),
        ]
        split_any = False
        for qx0, qy0, qx1, qy1 in quads:
            mask = (
                (batch.x[idx] >= qx0)
                & (batch.x[idx] < qx1 + (1e-9 if qx1 >= x1 else 0.0))
                & (batch.y[idx] >= qy0)
                & (batch.y[idx] < qy1 + (1e-9 if qy1 >= y1 else 0.0))
            )
            sub = idx[mask]
            if len(sub):
                work.append(((qx0, qy0, qx1, qy1), sub))
                split_any = True
        if not split_any:
            done.append((bounds, idx, model, err))
    # Finalise whatever is still pending.
    for bounds, idx in work:
        model, err = _region_error(batch, idx, cfg)
        done.append((bounds, idx, model, err))

    centroids = np.array(
        [[(b[0] + b[2]) / 2.0, (b[1] + b[3]) / 2.0] for b, _, _, _ in done]
    )
    models = [m for _, _, m, _ in done]
    errors = [e for _, _, _, e in done]
    labels = np.zeros(len(batch), dtype=np.intp)
    for k, (_, idx, _, _) in enumerate(done):
        labels[idx] = k
    t_n = valid_until if valid_until is not None else float(np.max(batch.t))
    cover = ModelCover(
        centroids=centroids,
        models=models,
        valid_until=t_n,
        family=cfg.family,
        window_c=window_c,
    )
    return AdKMNResult(
        cover=cover,
        region_errors_pct=errors,
        labels=labels,
        rounds=rounds,
        converged=all(e <= cfg.tau_n_pct for e in errors),
    )


def fit_adsplit(
    batch: TupleBatch,
    config: Optional[AdKMNConfig] = None,
    valid_until: Optional[float] = None,
    window_c: int = 0,
) -> AdKMNResult:
    """Greedy bisection cover: repeatedly 2-means-split the worst region."""
    cfg = config or AdKMNConfig()
    if not len(batch):
        raise ValueError("cannot fit Ad-SPLIT on an empty window")
    points = batch.positions()
    km = kmeans(points, min(cfg.initial_k, len(batch)), seed=cfg.seed)
    centroids = km.centroids
    labels = km.labels
    models, errors, _ = _fit_regions(batch, centroids, labels, cfg)
    max_models = min(cfg.max_models, len(batch))
    rounds = 0
    converged = False
    for rounds in range(1, cfg.max_rounds * 4 + 1):
        worst = int(np.argmax(errors))
        if errors[worst] <= cfg.tau_n_pct:
            converged = True
            break
        if len(centroids) >= max_models:
            break
        member_idx = np.flatnonzero(labels == worst)
        if len(member_idx) < 2:
            break
        # Local 2-means inside the worst region only.
        local = kmeans(points[member_idx], 2, seed=cfg.seed + rounds)
        centroids = np.vstack(
            [np.delete(centroids, worst, axis=0), local.centroids]
        )
        # Re-assign by nearest centroid but do NOT re-run global Lloyd —
        # that is the design difference versus Ad-KMN.
        d2 = (
            (points[:, None, 0] - centroids[None, :, 0]) ** 2
            + (points[:, None, 1] - centroids[None, :, 1]) ** 2
        )
        labels = np.argmin(d2, axis=1)
        models, errors, _ = _fit_regions(batch, centroids, labels, cfg)
    t_n = valid_until if valid_until is not None else float(np.max(batch.t))
    cover = ModelCover(
        centroids=centroids,
        models=models,
        valid_until=t_n,
        family=cfg.family,
        window_c=window_c,
    )
    return AdKMNResult(
        cover=cover,
        region_errors_pct=errors,
        labels=labels,
        rounds=rounds,
        converged=converged,
    )
