"""Command-line interface for the EnviroMeter reproduction.

Subcommands:

* ``figures``  — regenerate the paper's evaluation tables (E1–E4);
* ``dataset``  — generate the synthetic lausanne-data and write it to CSV;
* ``heatmap``  — render the web UI's heatmap for a given hour to a PPM file;
* ``serve``    — replay a stream into a server and report cover builds;
* ``recover``  — recover a durable tiered data directory (WAL replay plus
  completion of any crash-interrupted seal) and report what survived;
* ``compact``  — tidy a tiered data directory (checkpoint the WAL, drop
  orphan segments, optionally verify every checksum);
* ``explain``  — print the execution plan the pipeline chose for a query
  workload (ops, method per window/shard, cost estimates vs observed
  timings, cache and planner-feedback counters);
* ``shards``   — per-shard occupancy/load table (rows, windows, ingest
  and scan counters, EWMA load, skew coefficients), optionally after
  letting the adaptive rebalancer split/replicate/merge.

Examples::

    python -m repro.cli figures --quick
    python -m repro.cli dataset --days 2 --out lausanne.csv
    python -m repro.cli heatmap --hour 8.5 --out city.ppm
    python -m repro.cli heatmap --hour 8.5 --shards 4
    python -m repro.cli serve --days 1
    python -m repro.cli serve --days 1 --shards 4
    python -m repro.cli serve --days 1 --shards 4 --port 8765 --processes 4
    python -m repro.cli explain --hour 8.5 --method auto
    python -m repro.cli explain --shards 4 --queries 300 --method auto
    python -m repro.cli shards --shards 6 --focus 0.25 --rebalance 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.eval.experiments import (
        experiment_dataset,
        run_fig6a,
        run_fig6b,
        run_fig7a,
        run_fig7b,
    )
    from repro.eval.report import (
        format_fig6a,
        format_fig6b,
        format_fig7a,
        format_fig7b,
    )

    if args.quick:
        from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset

        ds = generate_lausanne_dataset(LausanneConfig(days=2))
        n_queries, mem_h, mem_runs = 500, 2000, 3
    else:
        ds = experiment_dataset()
        n_queries, mem_h, mem_runs = 5000, 5000, 10

    rows6a = run_fig6a(ds, n_queries=n_queries)
    print(format_fig6a(rows6a), end="\n\n")
    print(format_fig6b(run_fig6b(ds, n_queries=n_queries)), end="\n\n")
    print(format_fig7a(run_fig7a(ds, h=mem_h, runs=mem_runs)), end="\n\n")
    rows7b = run_fig7b(ds)
    print(format_fig7b(rows7b))
    if args.charts:
        from repro.eval.plots import fig6a_chart, fig7b_chart

        print("\nFigure 6(a) as a chart:\n" + fig6a_chart(rows6a))
        print("\nFigure 7(b) as charts:\n" + fig7b_chart(rows7b))
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.data.io import write_tuples_csv
    from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset

    cfg = LausanneConfig(days=args.days, seed=args.seed, target_tuples=args.target)
    ds = generate_lausanne_dataset(cfg)
    write_tuples_csv(ds.tuples, args.out)
    print(f"wrote {len(ds)} tuples to {args.out}")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.app.heatmap import Heatmap, render_ascii, render_ppm
    from repro.app.webapp import WebInterface
    from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
    from repro.geo.coords import BoundingBox
    from repro.query.engine import QueryEngine

    ds = generate_lausanne_dataset(
        LausanneConfig(days=args.days, seed=args.seed, target_tuples=0)
    )
    anchor = args.hour * 3600.0
    pos = min(int(np.searchsorted(ds.tuples.t, anchor)), len(ds.tuples) - 1)
    t = float(ds.tuples.t[pos])
    bounds = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
    if args.shards > 1:
        from repro.geo.region import RegionGrid
        from repro.query.sharded import ShardedQueryEngine
        from repro.storage.shards import ShardRouter

        router = ShardRouter(
            RegionGrid.for_shard_count(ds.covered_bbox(), args.shards), h=500
        )
        router.ingest(ds.tuples)
        sharded = ShardedQueryEngine(router, max_workers=args.workers)
        grid = sharded.heatmap_grid(
            t,
            bounds,
            nx=args.width,
            ny=args.height,
            method="model-cover" if args.model_grid else "naive",
        )
        heatmap = Heatmap(grid=grid, bounds=bounds)
    else:
        engine = QueryEngine(ds.tuples, h=500, max_workers=args.workers)
        web = WebInterface(engine)
        if args.model_grid:
            heatmap = web.model_grid(t, bounds, nx=args.width, ny=args.height)
        else:
            heatmap = web.heatmap(t, bounds, nx=args.width, ny=args.height)
    if args.out:
        render_ppm(heatmap, args.out)
        print(f"wrote {args.out}")
    else:
        print(render_ascii(heatmap))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
    from repro.server.server import EnviroMeterServer, ShardedEnviroMeterServer
    from repro.server.stream import StreamReplayer

    ds = generate_lausanne_dataset(
        LausanneConfig(days=args.days, seed=args.seed, target_tuples=0)
    )
    if args.port is not None:
        return _serve_network(ds, args)
    if args.processes is not None:
        print("--processes only applies to network mode; add --port", file=sys.stderr)
        return 2
    if args.subscriptions:
        print(
            "--subscriptions only applies to network mode; add --port",
            file=sys.stderr,
        )
        return 2
    if args.data_dir is not None or args.memory_windows is not None:
        print(
            "--data-dir/--memory-windows only apply to network mode; add --port",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1:
        from repro.geo.region import RegionGrid

        grid = RegionGrid.for_shard_count(ds.covered_bbox(), args.shards)
        inner = ShardedEnviroMeterServer(grid, h=args.h)
    else:
        inner = EnviroMeterServer(h=args.h)
    if args.serve_workers is not None:
        stats, chunks_served = _serve_concurrently(inner, ds, args)
        served = inner.served_values
    else:
        replayer = StreamReplayer(inner, batch_interval_s=args.batch_interval)
        stats = replayer.run(ds.tuples, query_every_s=args.query_every)
        served = inner.served_values
    print(
        f"replayed {stats.tuples} tuples in {stats.batches} batches; "
        f"server built {stats.covers_built} cover(s), "
        f"served {served} value(s)"
    )
    if args.serve_workers is not None:
        print(
            f"concurrent front end: {args.serve_workers} worker(s) answered "
            f"{chunks_served} query batch(es) during ingest; "
            f"final epoch {stats.final_epoch}"
        )
    if args.shards > 1:
        counts = ", ".join(str(c) for c in inner.shard_raw_counts())
        print(f"shards ({args.shards}): per-shard tuple counts [{counts}]")
        inner.close()  # reclaim the parallel-ingest worker pool
    return 0


def _serve_network(ds, args) -> int:
    """Ingest the dataset and serve it over HTTP/WebSocket.

    ``--processes N`` executes every plan on a pool of N worker
    processes over shared-memory shard exports (byte-identical answers,
    in-process fallback on worker failure); without it the sharded
    engine answers in-process.  ``--data-dir`` serves from the durable
    tier instead of RAM: on start the server *recovers* whatever the
    directory holds (sealed segments plus the WAL tail) and only ingests
    the generated dataset into an empty directory, so a restart after a
    crash resumes from the durable state; ``--memory-windows`` caps the
    resident sealed-window slices (cold windows fault in from segment
    files on demand).  Runs until interrupted.
    """
    import asyncio

    from repro.geo.region import RegionGrid
    from repro.query.pipeline.parallel import ProcessShardedEngine
    from repro.query.sharded import ShardedQueryEngine
    from repro.server.async_server import AsyncQueryServer, EngineQueryService
    from repro.storage.shards import ShardRouter

    # --subscriptions holds back the tail of the dataset so a live
    # trickle-ingest writer has something to push through the registry.
    tail = None
    head = ds.tuples
    if args.subscriptions:
        holdback = len(ds.tuples) // 10
        if holdback:
            cut = len(ds.tuples) - holdback
            head = ds.tuples.slice(0, cut)
            tail = ds.tuples.slice(cut, len(ds.tuples))

    if args.data_dir is not None:
        from repro.storage.tiered import TieredShardRouter

        router = TieredShardRouter(
            RegionGrid.for_shard_count(ds.covered_bbox(), args.shards),
            h=args.h,
            data_dir=args.data_dir,
            memory_windows=args.memory_windows,
        )
        recovered = router.global_count()
        if recovered:
            print(
                f"recovered {recovered} tuple(s) from {args.data_dir} "
                f"({router.sealed_window_count()} sealed window(s)); "
                f"skipping dataset ingest"
            )
            tail = None  # durable state is the truth: nothing to trickle
        else:
            router.ingest(head)
    else:
        if args.memory_windows is not None:
            print("--memory-windows needs --data-dir", file=sys.stderr)
            return 2
        router = ShardRouter(
            RegionGrid.for_shard_count(ds.covered_bbox(), args.shards), h=args.h
        )
        router.ingest(head)
    engine = ShardedQueryEngine(router)
    backend = (
        ProcessShardedEngine(engine, processes=args.processes)
        if args.processes is not None
        else engine
    )
    subscriptions = None
    if args.subscriptions:
        from repro.query.subscriptions import registry_for

        subscriptions = registry_for(backend)
    server = AsyncQueryServer(
        EngineQueryService(backend, subscriptions=subscriptions), port=args.port
    )
    stop_trickle = None
    if subscriptions is not None and tail is not None and len(tail.t):
        stop_trickle = _start_trickle(router, subscriptions, tail)
    mode = (
        f"{args.processes} worker process(es)"
        if args.processes is not None
        else "in-process"
    )
    tier = f", durable tier at {args.data_dir}" if args.data_dir else ""
    subs = (
        ", standing subscriptions on /ws"
        f" ({len(tail.t) if tail is not None else 0} tuple(s) trickling live)"
        if args.subscriptions
        else ""
    )
    print(
        f"serving {router.global_count()} tuples over {args.shards} shard(s), "
        f"{mode}{tier}{subs}; http://127.0.0.1:{args.port} (Ctrl-C to stop)"
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        if stop_trickle is not None:
            stop_trickle.set()
        backend.close()
        if args.data_dir is not None:
            router.close()
    return 0


def _start_trickle(router, registry, tail, interval_s: float = 2.0):
    """Feed the held-back dataset tail into the store in small batches
    from a daemon thread, notifying the subscription registry after each
    one — the free-running ingest writer that makes standing
    subscriptions move.  Returns the stop event."""
    import threading

    stop = threading.Event()
    step = max(1, len(tail.t) // 50)

    def run() -> None:
        for start in range(0, len(tail.t), step):
            if stop.wait(interval_s):
                return
            router.ingest(tail.slice(start, min(start + step, len(tail.t))))
            registry.notify_ingest()

    threading.Thread(
        target=run, daemon=True, name="subscription-trickle"
    ).start()
    return stop


def _cmd_recover(args: argparse.Namespace) -> int:
    """Open a tiered data directory, replaying its WAL and completing any
    interrupted seal, then report (and optionally verify) what survived."""
    from repro.storage.tiered import TieredShardRouter

    try:
        router = TieredShardRouter.open(args.data_dir)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        stats = router.tier_stats()
        print(
            f"recovered {router.global_count()} tuple(s): "
            f"{stats['sealed_windows']} sealed window(s) in segment files, "
            f"{router.global_count() - stats['sealed_windows'] * router.h} "
            f"tail row(s) from the WAL"
        )
        print(
            f"shards ({router.n_shards}): per-shard tuple counts "
            f"[{', '.join(str(c) for c in router.shard_counts())}]"
        )
        if args.verify:
            report = router.compact(verify=True)
            print(
                f"verified {report['segments_verified']} segment(s); "
                f"removed {report['orphans_removed']} orphan(s), "
                f"{report['tmp_removed']} temp file(s)"
            )
    finally:
        router.close()
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """Tidy a tiered data directory: checkpoint the WAL, drop orphan
    segments and stray temp files, optionally verify every checksum."""
    from repro.storage.tiered import TieredShardRouter

    try:
        router = TieredShardRouter.open(args.data_dir)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        report = router.compact(verify=args.verify)
        stats = router.tier_stats()
        print(
            f"compacted {args.data_dir}: removed {report['orphans_removed']} "
            f"orphan segment(s) and {report['tmp_removed']} temp file(s); "
            f"WAL checkpointed at window {stats['sealed_windows']}"
        )
        if args.verify:
            print(f"verified {report['segments_verified']} segment(s)")
    finally:
        router.close()
    return 0


def _serve_concurrently(inner, ds, args):
    """Replay on a writer thread while the pool serves query bursts.

    The writer replays the stream exactly as the serial path does; the
    main thread, meanwhile, fans batches of point queries (spread over
    the sensed area, stamped with the replay's virtual clock) across the
    :class:`ConcurrentEnviroMeterServer` worker pool — queries answered
    *while ingest proceeds*, which is what ``--serve-workers`` promises.
    Returns (replay stats, number of query batches served).
    """
    import threading

    import numpy as np

    from repro.network.messages import QueryRequest
    from repro.server.server import ConcurrentEnviroMeterServer
    from repro.server.stream import StreamReplayer

    bbox = ds.covered_bbox()
    xs = np.linspace(bbox.min_x + 0.1 * bbox.width, bbox.max_x - 0.1 * bbox.width, 8)
    ys = np.linspace(bbox.min_y + 0.1 * bbox.height, bbox.max_y - 0.1 * bbox.height, 8)
    clock = {"now": None}
    done = threading.Event()
    outcome: list = []

    front = ConcurrentEnviroMeterServer(inner, max_workers=args.serve_workers)
    replayer = StreamReplayer(front, batch_interval_s=args.batch_interval)

    def writer():
        try:
            outcome.append(
                replayer.run(
                    ds.tuples,
                    on_progress=lambda now, _total: clock.__setitem__("now", now),
                )
            )
        finally:
            done.set()

    def burst(now: float) -> None:
        chunk = [
            QueryRequest(t=float(now), x=float(x), y=float(y))
            for x in xs
            for y in ys
        ]
        front.handle_many(chunk)

    chunks_served = 0
    thread = threading.Thread(target=writer)
    thread.start()
    try:
        while not done.wait(timeout=0.005):
            now = clock["now"]
            if now is None or not front.has_data():
                continue
            burst(now)
            chunks_served += 1
        # Small replays can finish before the first burst lands; always
        # close with one pool-served batch against the final state.
        if clock["now"] is not None:
            burst(clock["now"])
            chunks_served += 1
    finally:
        thread.join()
        front.close()
    if not outcome:  # pragma: no cover - writer failed before returning
        raise RuntimeError("stream replay failed")
    return outcome[0], chunks_served


def _format_shard_table(router, replicas=None) -> str:
    """Per-shard occupancy/load table (the ``shards`` subcommand body,
    also appended to sharded ``explain`` output).

    Occupancy comes from :meth:`window_stats` — whose rows carry the
    ingest epoch they were read at, so a row read while a writer (or a
    rebalance) advanced the store is labelled ``stale`` rather than
    silently presented as current — and load from
    :meth:`shard_load_stats`.  The footer's skew coefficients are
    max/mean ratios (1.0 = perfectly balanced).
    """
    from repro.geo.region import RefinedRegionGrid
    from repro.storage.load import skew_coefficient

    n = router.n_shards
    counts = router.shard_counts()
    load_stats = router.shard_load_stats()
    occupied = [0] * n
    stale = [False] * n
    for c in range(router.global_window_count()):
        for s, (_stamp, n_rows, read_epoch) in enumerate(router.window_stats(c)):
            if n_rows:
                occupied[s] += 1
            if read_epoch != router.epoch:
                stale[s] = True
    grid = router.grid
    refined = grid if isinstance(grid, RefinedRegionGrid) else None
    replicas = replicas or {}
    lines = [
        f"{'shard':>5} {'cell':>5} {'rows':>8} {'windows':>7} "
        f"{'ingested':>9} {'queries':>8} {'scan-units':>11} {'load':>10}  flags"
    ]
    for s in range(n):
        if refined is not None and not refined.active_shards[s]:
            continue  # retired hole slot
        cell = refined.cell_of_shard(s) if refined is not None else s
        st = load_stats[s]
        flags = []
        if refined is not None and refined.is_split(cell):
            flags.append("split")
        if replicas.get(s, 0) > 1:
            flags.append(f"x{replicas[s]} replicas")
        if stale[s]:
            flags.append("stale")
        lines.append(
            f"{s:>5} {cell:>5} {counts[s]:>8} {occupied[s]:>7} "
            f"{st.ingest_rows:>9} {st.scan_queries:>8} {st.scan_units:>11.0f} "
            f"{st.load:>10.1f}  {' '.join(flags)}"
        )
    row_skew = skew_coefficient(counts)
    load_skew = router.load_skew() if hasattr(router, "load_skew") else 1.0
    ewma_skew = skew_coefficient([st.load for st in load_stats])
    lines.append(
        f"skew (max/mean): rows {row_skew:.2f}, recent load {ewma_skew:.2f}"
    )
    return "\n".join(lines)


def _cmd_shards(args: argparse.Namespace) -> int:
    """Ingest a dataset, drive a (possibly skewed) query workload, and
    print the per-shard occupancy/load table — optionally letting the
    adaptive rebalancer act between workload rounds."""
    import numpy as np

    from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
    from repro.geo.region import RegionGrid
    from repro.query.base import QueryBatch
    from repro.query.sharded import ShardedQueryEngine
    from repro.storage.shards import ShardRouter

    ds = generate_lausanne_dataset(
        LausanneConfig(days=args.days, seed=args.seed, target_tuples=0)
    )
    bounds = ds.covered_bbox()
    router = ShardRouter(
        RegionGrid.for_shard_count(bounds, args.shards), h=args.h
    )
    router.ingest(ds.tuples)
    engine = ShardedQueryEngine(router, max_workers=args.workers)
    if not 0.0 < args.focus <= 1.0:
        raise SystemExit("--focus must be in (0, 1]")
    if args.queries:
        rng = np.random.default_rng(args.seed)
        # Query positions contracted toward the region centre by --focus
        # (1.0 = uniform): the skewed read traffic whose load the table
        # and the rebalancer observe.
        qx = bounds.min_x + bounds.width / 2 + (
            rng.uniform(-0.5, 0.5, args.queries) * bounds.width * args.focus
        )
        qy = bounds.min_y + bounds.height / 2 + (
            rng.uniform(-0.5, 0.5, args.queries) * bounds.height * args.focus
        )
        qt = rng.uniform(float(ds.tuples.t[0]), float(ds.tuples.t[-1]), args.queries)
        engine.continuous_query_batch(QueryBatch(qt, qx, qy))
    if args.rebalance:
        from repro.storage.rebalance import ShardRebalancer

        rebalancer = ShardRebalancer(router, engine=engine)
        for action in rebalancer.run(max_steps=args.rebalance):
            detail = ""
            if action.kind == "split":
                detail = f"shard {action.shard} -> {list(action.new_shards)}"
            elif action.kind == "merge":
                detail = f"cell {action.cell} -> shard {action.shard}"
            elif action.kind == "replicas":
                detail = str(action.replicas)
            print(
                f"rebalance: {action.kind} {detail} "
                f"(skew was {action.skew:.2f})"
            )
    print(_format_shard_table(router, replicas=engine.replicas))
    engine.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Compile one query workload, print the plan, run it, print timings."""
    import numpy as np

    from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
    from repro.query.base import QueryBatch
    from repro.query.pipeline.plan import PlanReport, format_plan

    ds = generate_lausanne_dataset(
        LausanneConfig(days=args.days, seed=args.seed, target_tuples=0)
    )
    tuples = ds.tuples
    bounds = ds.covered_bbox()
    anchor = args.hour * 3600.0
    pos = min(int(np.searchsorted(tuples.t, anchor)), len(tuples) - 1)
    t = float(tuples.t[pos])
    if not 0.0 < args.focus <= 1.0:
        raise SystemExit("--focus must be in (0, 1]")
    if args.queries:
        # A continuous stream sweeping the whole day (diagonal time walk).
        span = len(tuples) - 1
        picks = [i * span // max(args.queries - 1, 1) for i in range(args.queries)]
        qx = tuples.x[picks] + 50.0
        qy = tuples.y[picks] - 50.0
        if args.focus < 1.0:
            # Localize the stream spatially: contract every query point
            # toward the covered box's centre, keeping the time sweep.
            qx = bounds.min_x + bounds.width / 2 + (qx - bounds.min_x - bounds.width / 2) * args.focus
            qy = bounds.min_y + bounds.height / 2 + (qy - bounds.min_y - bounds.height / 2) * args.focus
        batch = QueryBatch(tuples.t[picks], qx, qy)
        workload = f"continuous stream of {len(batch)} queries"
    else:
        w = bounds.width * args.focus
        h_box = bounds.height * args.focus
        batch = QueryBatch.from_grid(
            t,
            bounds.min_x + (bounds.width - w) / 2,
            bounds.min_y + (bounds.height - h_box) / 2,
            w, h_box, args.width, args.height,
        )
        workload = f"{args.width}x{args.height} heatmap grid at hour {args.hour}"
    if args.focus < 1.0:
        workload += f" (focused on the centre {args.focus:.0%} of the region)"

    if args.shards > 1:
        from repro.geo.region import RegionGrid
        from repro.query.sharded import ShardedQueryEngine
        from repro.storage.shards import ShardRouter

        router = ShardRouter(
            RegionGrid.for_shard_count(bounds, args.shards), h=args.h
        )
        router.ingest(tuples)
        engine = ShardedQueryEngine(
            router, max_workers=args.workers, prune=not args.no_prune
        )
    else:
        from repro.query.engine import QueryEngine

        engine = QueryEngine(
            tuples, h=args.h, max_workers=args.workers, prune=not args.no_prune
        )

    print(f"workload: {workload} ({args.shards} shard(s), h={args.h})")
    report = PlanReport()
    if args.shards > 1:
        plan_kwargs = {}
    else:
        # Mirror the real serving paths' dispatch policies, so the
        # printed plan is the plan production would execute: heatmap
        # grids always vectorise, continuous streams use the engine's
        # scalar/parallel thresholds.
        from repro.query.pipeline.plan import ENGINE_POLICY, VECTORISED_POLICY

        plan_kwargs = {
            "policy": ENGINE_POLICY if args.queries else VECTORISED_POLICY
        }
    if args.warm:
        # One untimed run first: indexes/covers/verdicts materialise, so
        # the printed plan shows steady-state timings and feedback.
        engine.execute(engine.plan(batch, args.method, **plan_kwargs))
    plan = engine.plan(batch, args.method, want_estimates=True, **plan_kwargs)
    result = engine.execute(plan, report)
    print(format_plan(plan, report))
    print(
        f"answered {result.n_answered}/{len(result)} queries; "
        f"cache {engine.cache_stats.as_dict()}"
    )
    print(
        f"pruning: ops_pruned={report.ops_pruned} ops_kept={report.ops_kept} "
        f"(engine cumulative {engine.prune_stats.as_dict()})"
    )
    feedback = engine.planner.feedback.as_dict()
    if feedback:
        print("planner feedback (observed cost per scan unit):")
        for method, row in feedback.items():
            print(
                f"  {method:<12} {row['sec_per_unit'] * 1e9:9.2f} ns/unit "
                f"({row['observations']} observation(s))"
            )
    if args.shards > 1:
        print("\nper-shard occupancy and load:")
        print(_format_shard_table(engine.router, replicas=engine.replicas))
    if hasattr(engine, "close"):
        engine.close()
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="EnviroMeter reproduction tooling"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate the evaluation tables")
    p.add_argument("--quick", action="store_true", help="scaled-down run (~30 s)")
    p.add_argument(
        "--charts", action="store_true", help="also render ASCII charts (paper style)"
    )
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("dataset", help="generate lausanne-data as CSV")
    p.add_argument("--days", type=int, default=30)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--target", type=int, default=176_000, help="0 = no subsampling")
    p.add_argument("--out", default="lausanne.csv")
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("heatmap", help="render the web UI heatmap")
    p.add_argument("--hour", type=float, default=8.5, help="hour of day 0-24")
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--height", type=int, default=24)
    p.add_argument(
        "--model-grid",
        action="store_true",
        help="evaluate the owning model per cell (batched path) instead of "
        "the centroid-splat demo rendering",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="thread-pool size for batched query groups (default: CPU count)",
    )
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="region-shard the store and render via scatter-gather. Note "
        "the estimator changes: sharded rendering computes the exact "
        "radius-average grid (NaN where no tuple is in radius) — or the "
        "per-cell owning-model grid with --model-grid — instead of the "
        "unsharded default's centroid-splat demo rendering",
    )
    p.add_argument("--out", default=None, help="PPM output path (default: ASCII to stdout)")
    p.set_defaults(func=_cmd_heatmap)

    p = sub.add_parser("serve", help="replay a stream into a server")
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--h", type=int, default=240, help="window size in tuples")
    p.add_argument("--batch-interval", type=float, default=600.0)
    p.add_argument("--query-every", type=float, default=3600.0)
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="one region-sharded server per grid cell (ingest routes to "
        "the owning shard only)",
    )
    p.add_argument(
        "--serve-workers",
        type=_positive_int,
        default=None,
        help="serve queries from a thread pool of this size while ingest "
        "proceeds (snapshot-isolated concurrent serving layer)",
    )
    p.add_argument(
        "--port",
        type=_positive_int,
        default=None,
        help="network mode: ingest the dataset, then serve the three web "
        "modes over HTTP/WebSocket on this port until interrupted",
    )
    p.add_argument(
        "--processes",
        type=_positive_int,
        default=None,
        help="network mode only: execute plans on this many worker "
        "processes over shared-memory shard exports (answers are "
        "byte-identical to in-process; worker crashes fall back "
        "transparently)",
    )
    p.add_argument(
        "--data-dir",
        default=None,
        help="network mode: serve from a durable tiered store rooted here "
        "(sealed windows as segment files + WAL).  Recovers existing "
        "state on start; only an empty directory gets the generated "
        "dataset ingested",
    )
    p.add_argument(
        "--memory-windows",
        type=_positive_int,
        default=None,
        help="with --data-dir: cap on resident sealed (shard, window) "
        "slices; colder ones are evicted and fault back in from their "
        "segment files on demand (default: unbounded)",
    )
    p.add_argument(
        "--subscriptions",
        action="store_true",
        help="network mode: accept standing queries over /ws "
        "({\"mode\": \"subscribe\"} frames, pushed delta updates); holds "
        "back the last 10%% of the generated dataset and trickle-ingests "
        "it live so registered routes receive updates (skipped when "
        "--data-dir recovered existing state)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "recover",
        help="recover a tiered data directory (WAL replay + seal completion)",
    )
    p.add_argument("--data-dir", required=True)
    p.add_argument(
        "--verify",
        action="store_true",
        help="additionally re-read every live segment, checking all "
        "checksums, and drop orphan files",
    )
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "compact",
        help="tidy a tiered data directory (checkpoint WAL, drop orphans)",
    )
    p.add_argument("--data-dir", required=True)
    p.add_argument(
        "--verify", action="store_true", help="also verify every segment checksum"
    )
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "explain",
        help="print the pipeline's execution plan for a query workload",
    )
    p.add_argument("--hour", type=float, default=8.5, help="hour of day 0-24")
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--h", type=int, default=500, help="window size in tuples")
    p.add_argument(
        "--method",
        default="auto",
        help="query method (default auto: the planner chooses per window/shard)",
    )
    p.add_argument("--width", type=int, default=40, help="heatmap grid width")
    p.add_argument("--height", type=int, default=30, help="heatmap grid height")
    p.add_argument(
        "--queries",
        type=int,
        default=0,
        help="explain a continuous stream of this many queries instead of "
        "the heatmap grid",
    )
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="region-shard the store and explain the scatter-gather plan",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="thread-pool size for plan execution (default: CPU count)",
    )
    p.add_argument(
        "--warm",
        action="store_true",
        help="run the plan once untimed first, so the printed timings show "
        "the steady state (caches hot, planner feedback populated)",
    )
    p.add_argument(
        "--focus",
        type=float,
        default=1.0,
        help="localize the workload to the centre fraction of the covered "
        "region (0 < f <= 1), e.g. 0.25 — localized disks are what the "
        "scatter-pruning pass turns into skipped shards",
    )
    p.add_argument(
        "--no-prune",
        action="store_true",
        help="compile the full scatter instead of the pruned plan "
        "(answers are byte-identical; for comparing fan-out)",
    )
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "shards",
        help="per-shard occupancy/load table, optionally after adaptive "
        "rebalancing",
    )
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--h", type=int, default=500, help="window size in tuples")
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=6,
        help="number of region shards to lay the store out over",
    )
    p.add_argument(
        "--queries",
        type=int,
        default=400,
        help="size of the query workload driven before reading the table "
        "(0 = ingest only)",
    )
    p.add_argument(
        "--focus",
        type=float,
        default=1.0,
        help="contract the query workload to the centre fraction of the "
        "region (0 < f <= 1) — localized traffic is what makes the load "
        "skew coefficient move",
    )
    p.add_argument(
        "--rebalance",
        type=int,
        default=0,
        help="let the adaptive rebalancer take up to this many actions "
        "(split / replicas / merge) before printing the table",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="thread-pool size for plan execution (default: CPU count)",
    )
    p.set_defaults(func=_cmd_shards)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
