"""The model-cache client (Section 2.3).

System initialisation: send a model request ``e_l``; the server responds
with (i) the coefficients of all models in M, (ii) the centroids µ, and
(iii) the validity horizon ``t_n``.  The client stores ``(t_n, µ, M)``.

For every query tuple: if ``t_l <= t_n``, find the nearest centroid µ*
and evaluate its model locally — **no server contact**.  If ``t_l > t_n``
the cached cover is invalid: send a new model request and refresh.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple
from repro.network.link import CellularLink
from repro.network.messages import ModelCoverResponse, ModelRequest
from repro.network.protocol import framed_size
from repro.network.stats import TrafficStats
from repro.server.server import EnviroMeterServer


class ModelCacheClient:
    """Smartphone client that caches the model cover locally."""

    def __init__(self, server: EnviroMeterServer, link: Optional[CellularLink] = None) -> None:
        self._server = server
        self._link = link or CellularLink()
        self.stats = TrafficStats()
        self._cover: Optional[ModelCover] = None

    @property
    def link(self) -> CellularLink:
        return self._link

    @property
    def cached_cover(self) -> Optional[ModelCover]:
        return self._cover

    @property
    def cache_refreshes(self) -> int:
        """How many model requests this client has issued."""
        return self.stats.sent_messages

    def _refresh(self, q: QueryTuple) -> None:
        """Fetch a fresh cover from the server (one round trip)."""
        request = ModelRequest(t=q.t, x=q.x, y=q.y)
        up_size = framed_size(len(request.body()))
        up_time = self._link.send_up(up_size)
        self.stats.record_sent(up_size, up_time)

        response = self._server.handle(request)
        if not isinstance(response, ModelCoverResponse):
            raise RuntimeError("server returned an unexpected response type")
        down_size = framed_size(len(response.body()))
        down_time = self._link.send_down(down_size)
        self.stats.record_received(down_size, down_time)
        self._cover = response.cover()

    def query(self, q: QueryTuple) -> Optional[float]:
        """One position update: local evaluation unless the cover expired."""
        if self._cover is None or not self._cover.is_valid_at(q.t):
            self._refresh(q)
        assert self._cover is not None
        return self._cover.predict(q.t, q.x, q.y)

    def run_continuous(self, queries: List[QueryTuple]) -> List[Optional[float]]:
        return [self.query(q) for q in queries]
