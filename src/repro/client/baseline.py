"""The baseline client (Section 2.3).

"A baseline technique, which simply responds to each query tuple with the
interpolated sensor value ŝ_l, without caching the models."  Every query
tuple costs one uplink request and one downlink response over the
cellular link; the traffic ledger records what the bandwidth experiment
measures.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.data.tuples import QueryTuple
from repro.network.link import CellularLink
from repro.network.messages import QueryRequest, ValueResponse
from repro.network.protocol import framed_size
from repro.network.stats import TrafficStats
from repro.server.server import EnviroMeterServer


class BaselineClient:
    """Smartphone client that asks the server for every value."""

    def __init__(self, server: EnviroMeterServer, link: Optional[CellularLink] = None) -> None:
        self._server = server
        self._link = link or CellularLink()
        self.stats = TrafficStats()

    @property
    def link(self) -> CellularLink:
        return self._link

    def query(self, q: QueryTuple) -> Optional[float]:
        """One position update: full round trip to the server."""
        request = QueryRequest(t=q.t, x=q.x, y=q.y)
        up_size = framed_size(len(request.body()))
        up_time = self._link.send_up(up_size)
        self.stats.record_sent(up_size, up_time)

        response = self._server.handle(request)
        if not isinstance(response, ValueResponse):
            raise RuntimeError("server returned an unexpected response type")
        down_size = framed_size(len(response.body()))
        down_time = self._link.send_down(down_size)
        self.stats.record_received(down_size, down_time)
        return None if math.isnan(response.value) else response.value

    def run_continuous(self, queries: List[QueryTuple]) -> List[Optional[float]]:
        """Process a whole continuous query (e.g. the experiment's 100
        query tuples)."""
        return [self.query(q) for q in queries]
