"""OSHA-based CO2 health classification (Section 3).

The Android app displays "an informative text indicating whether this
value is acceptable according to the OSHA guidelines" and colours route
markers "from green (safe) to red (hazardous CO2 levels)".  The OSHA
chemical-sampling datasheet for carbon dioxide [1] gives:

* PEL / 8-hour TWA: 5 000 ppm
* ACGIH STEL (15 min): 30 000 ppm

Outdoor community sensing operates far below these workplace limits, so
the scale below adds the conventional ambient bands used by indoor/urban
air-quality guidance between "fresh air" and the OSHA limits.
"""

from __future__ import annotations

import enum
from typing import Tuple

OSHA_TWA_PPM = 5_000.0
"""OSHA permissible exposure limit, 8-hour time-weighted average."""

OSHA_STEL_PPM = 30_000.0
"""Short-term (15-minute) exposure limit."""


class HealthLevel(enum.IntEnum):
    """Ordered severity bands for CO2 concentration."""

    FRESH = 0          # ambient outdoor air
    ACCEPTABLE = 1     # typical urban levels
    ELEVATED = 2       # busy traffic, poorly ventilated
    POOR = 3           # drowsiness threshold guidance
    UNSAFE = 4         # above the OSHA 8-hour TWA
    HAZARDOUS = 5      # approaching/above the short-term limit


_BANDS: Tuple[Tuple[float, HealthLevel], ...] = (
    (450.0, HealthLevel.FRESH),
    (800.0, HealthLevel.ACCEPTABLE),
    (1_500.0, HealthLevel.ELEVATED),
    (OSHA_TWA_PPM, HealthLevel.POOR),
    (OSHA_STEL_PPM, HealthLevel.UNSAFE),
)

_DESCRIPTIONS = {
    HealthLevel.FRESH: "Fresh air — typical outdoor background.",
    HealthLevel.ACCEPTABLE: "Acceptable — normal urban levels.",
    HealthLevel.ELEVATED: "Elevated — heavy traffic or poor ventilation nearby.",
    HealthLevel.POOR: "Poor — prolonged exposure may cause drowsiness.",
    HealthLevel.UNSAFE: "Unsafe — exceeds the OSHA 8-hour workplace limit.",
    HealthLevel.HAZARDOUS: "Hazardous — exceeds short-term exposure limits.",
}

# Green -> red scale, as on the app's route markers.
_COLORS = {
    HealthLevel.FRESH: "#2ecc40",
    HealthLevel.ACCEPTABLE: "#a3d977",
    HealthLevel.ELEVATED: "#ffdc00",
    HealthLevel.POOR: "#ff851b",
    HealthLevel.UNSAFE: "#ff4136",
    HealthLevel.HAZARDOUS: "#85144b",
}


def classify_co2(ppm: float) -> HealthLevel:
    """Severity band for a CO2 concentration in ppm."""
    if ppm < 0:
        raise ValueError("concentration cannot be negative")
    for threshold, level in _BANDS:
        if ppm < threshold:
            return level
    return HealthLevel.HAZARDOUS


def describe_co2(ppm: float) -> str:
    """The app's informative text for a concentration."""
    level = classify_co2(ppm)
    return f"{ppm:.0f} ppm CO2 — {_DESCRIPTIONS[level]}"


def color_for_level(level: HealthLevel) -> str:
    """Marker colour (hex) for a severity band."""
    return _COLORS[level]


def is_acceptable(ppm: float) -> bool:
    """The app's headline yes/no: acceptable according to OSHA."""
    return classify_co2(ppm) < HealthLevel.UNSAFE
