"""Route recording (Section 3).

"The application has the ability to record routes.  After a route has
been recorded, the user can view it on a map.  In addition, the
application presents the average pollution level through the route",
with per-point markers coloured green→red.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.client.osha import HealthLevel, classify_co2, color_for_level, is_acceptable
from repro.data.tuples import QueryTuple


@dataclass(frozen=True)
class RoutePoint:
    """One recorded position with its pollution reading."""

    t: float
    x: float
    y: float
    co2_ppm: Optional[float]

    @property
    def level(self) -> Optional[HealthLevel]:
        return None if self.co2_ppm is None else classify_co2(self.co2_ppm)

    @property
    def marker_color(self) -> Optional[str]:
        level = self.level
        return None if level is None else color_for_level(level)


@dataclass
class RecordedRoute:
    """A finished recording with the app's summary statistics."""

    name: str
    points: List[RoutePoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a recorded route needs at least one point")

    @property
    def readings(self) -> List[float]:
        return [p.co2_ppm for p in self.points if p.co2_ppm is not None]

    @property
    def average_ppm(self) -> Optional[float]:
        """The app's headline: average pollution through the route."""
        values = self.readings
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def peak_ppm(self) -> Optional[float]:
        values = self.readings
        return max(values) if values else None

    @property
    def acceptable(self) -> Optional[bool]:
        """Whether the average is acceptable per the OSHA guidance."""
        avg = self.average_ppm
        return None if avg is None else is_acceptable(avg)

    def summary_text(self) -> str:
        """The informative text shown after recording stops."""
        avg = self.average_ppm
        if avg is None:
            return f"Route {self.name!r}: no pollution data available."
        verdict = "acceptable" if self.acceptable else "NOT acceptable"
        return (
            f"Route {self.name!r}: average {avg:.0f} ppm CO2 over "
            f"{len(self.points)} points — {verdict} per OSHA guidelines."
        )


QueryFn = Callable[[QueryTuple], Optional[float]]
"""Any value source: a client, a processor's process().value, etc."""


class RouteRecorder:
    """Records a route by querying a value source at each position update."""

    def __init__(self, query_fn: QueryFn) -> None:
        self._query_fn = query_fn
        self._points: List[RoutePoint] = []
        self._recording = False
        self._name = ""

    @property
    def recording(self) -> bool:
        return self._recording

    def start(self, name: str) -> None:
        if self._recording:
            raise RuntimeError("already recording a route")
        self._name = name
        self._points = []
        self._recording = True

    def update_position(self, t: float, x: float, y: float) -> RoutePoint:
        """One GPS position update while recording."""
        if not self._recording:
            raise RuntimeError("not recording; call start() first")
        value = self._query_fn(QueryTuple(t=t, x=x, y=y))
        point = RoutePoint(t=t, x=x, y=y, co2_ppm=value)
        self._points.append(point)
        return point

    def stop(self) -> RecordedRoute:
        """Finish the recording and return the summarised route."""
        if not self._recording:
            raise RuntimeError("not recording")
        if not self._points:
            raise RuntimeError("cannot stop: no points recorded")
        self._recording = False
        return RecordedRoute(name=self._name, points=list(self._points))
