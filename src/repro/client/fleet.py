"""Multi-client fleet simulation — beyond the paper's single object.

Section 2.2 assumes "a single mobile object ... continuously querying
for pollution around it"; a deployed platform serves many.  The fleet
simulator runs N clients (any mix of baseline and model-cache) against
one server, each on its own trajectory and cellular link, and aggregates
the traffic ledgers — quantifying how the model-cache win scales with
fleet size: the server-side cover is computed once and every cached
client amortises it, while baseline traffic grows linearly per client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.data.tuples import QueryTuple
from repro.geo.region import RegionGrid
from repro.network.link import GPRS, BearerProfile, CellularLink
from repro.network.stats import TrafficStats
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.query.executor import BatchExecutor
from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)

Point = Tuple[float, float]


@dataclass(frozen=True)
class FleetMember:
    """One mobile object: a route, a query cadence, a client strategy."""

    name: str
    waypoints: Tuple[Point, ...]
    use_model_cache: bool = True
    interval_s: float = 60.0
    n_queries: int = 60

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError(f"{self.name}: a route needs at least two waypoints")
        if self.interval_s <= 0:
            raise ValueError(f"{self.name}: interval must be positive")
        if self.n_queries < 1:
            raise ValueError(f"{self.name}: need at least one query")

    def queries(self, t_start: float) -> List[QueryTuple]:
        duration = self.n_queries * self.interval_s
        traj = waypoint_trajectory(list(self.waypoints), t_start, t_start + duration)
        return uniform_query_tuples(traj, t_start, self.interval_s, self.n_queries)


@dataclass
class MemberReport:
    """Per-member outcome of a fleet run."""

    name: str
    use_model_cache: bool
    stats: TrafficStats
    answered: int


@dataclass
class SubscriptionMemberReport:
    """Per-member outcome of a standing-subscription run."""

    name: str
    subscription_id: int
    initial_answered: int
    updates_received: int
    readings_changed: int
    answered: int


@dataclass
class SubscriptionFleetReport:
    """Aggregate outcome of a standing-subscription fleet run."""

    members: List[SubscriptionMemberReport]
    maintenance_passes: int
    quiet_passes: int
    queries_reexecuted: int


@dataclass
class FleetReport:
    """Aggregate outcome of a fleet run."""

    members: List[MemberReport]
    server_covers_served: int
    server_values_served: int

    def total_stats(self) -> TrafficStats:
        total = TrafficStats()
        for m in self.members:
            total = total.merged_with(m.stats)
        return total

    def stats_by_strategy(self) -> Tuple[TrafficStats, TrafficStats]:
        """(baseline aggregate, model-cache aggregate)."""
        base, cache = TrafficStats(), TrafficStats()
        for m in self.members:
            if m.use_model_cache:
                cache = cache.merged_with(m.stats)
            else:
                base = base.merged_with(m.stats)
        return base, cache


class FleetSimulator:
    """Runs a fleet of clients against one EnviroMeter server."""

    def __init__(
        self,
        server: Union[
            EnviroMeterServer, ShardedEnviroMeterServer, ConcurrentEnviroMeterServer
        ],
        bearer: BearerProfile = GPRS,
    ) -> None:
        self.server = server
        self.bearer = bearer

    def _run_member(self, member: FleetMember, t_start: float) -> MemberReport:
        link = CellularLink(self.bearer)
        client = (
            ModelCacheClient(self.server, link)
            if member.use_model_cache
            else BaselineClient(self.server, link)
        )
        values = client.run_continuous(member.queries(t_start))
        return MemberReport(
            name=member.name,
            use_model_cache=member.use_model_cache,
            stats=client.stats,
            answered=sum(v is not None for v in values),
        )

    def _check_members(self, members: Sequence[FleetMember]) -> None:
        if not members:
            raise ValueError("fleet needs at least one member")
        names = [m.name for m in members]
        if len(names) != len(set(names)):
            raise ValueError("fleet member names must be unique")

    def run(self, members: Sequence[FleetMember], t_start: float) -> FleetReport:
        """Run every member's continuous query; returns the full report.

        Members run sequentially against the shared server — the traffic
        and cover-reuse accounting is identical to an interleaved run
        because the server's covers depend only on ingested data, not on
        request order within the window.
        """
        self._check_members(members)
        reports = [self._run_member(member, t_start) for member in members]
        return FleetReport(
            members=reports,
            server_covers_served=self.server.served_covers,
            server_values_served=self.server.served_values,
        )

    def run_concurrent(
        self,
        members: Sequence[FleetMember],
        t_start: float,
        max_workers: Optional[int] = None,
    ) -> FleetReport:
        """:meth:`run` with members on concurrent threads — the load shape
        a deployed platform actually sees, served by the thread-safe
        serving layer.

        Each member keeps its own client and link (per-thread state), so
        the only shared object is the server; per-member answers and
        traffic ledgers are identical to the sequential run because every
        request is answered against a pinned storage snapshot.  Reports
        come back in member order.
        """
        self._check_members(members)
        executor = BatchExecutor(max_workers=max_workers)
        try:
            reports = executor.map(
                lambda member: self._run_member(member, t_start), members
            )
        finally:
            executor.shutdown()
        return FleetReport(
            members=reports,
            server_covers_served=self.server.served_covers,
            server_values_served=self.server.served_values,
        )

    def run_subscriptions(
        self,
        members: Sequence[FleetMember],
        t_start: float,
        ingest_batches: Sequence = (),
    ) -> SubscriptionFleetReport:
        """Register every member's route as a standing subscription, then
        stream ``ingest_batches`` through the server, polling between
        batches.

        The push-era counterpart of :meth:`run`: instead of every member
        re-asking its whole route per poll, the server's registry
        re-executes only the slices each ingest dirtied and members
        receive delta updates — the report's ``queries_reexecuted`` vs.
        ``len(members) * n_queries * batches`` is the saving.
        """
        self._check_members(members)
        subs = {
            member.name: self.server.subscribe(
                list(member.waypoints),
                t_start,
                interval_s=member.interval_s,
                count=member.n_queries,
            )
            for member in members
        }
        received = {m.name: 0 for m in members}
        changed = {m.name: 0 for m in members}
        for batch in ingest_batches:
            self.server.ingest(batch)
            for member in members:
                for update in self.server.poll_updates(subs[member.name].id):
                    received[member.name] += 1
                    changed[member.name] += len(update.indices)
        reports = []
        for member in members:
            sub = subs[member.name]
            values, _support = sub.answer()
            reports.append(
                SubscriptionMemberReport(
                    name=member.name,
                    subscription_id=sub.id,
                    initial_answered=int(
                        np.isfinite(np.asarray(sub.initial.values)).sum()
                    ),
                    updates_received=received[member.name],
                    readings_changed=changed[member.name],
                    answered=int(np.isfinite(values).sum()),
                )
            )
        stats = self.server.subscriptions.stats
        return SubscriptionFleetReport(
            members=reports,
            maintenance_passes=stats.maintains,
            quiet_passes=stats.quiet_passes,
            queries_reexecuted=stats.queries_reexecuted,
        )


def commuter_fleet(
    n: int,
    bbox,
    use_model_cache: bool = True,
    seed: int = 0,
    n_queries: int = 60,
) -> List[FleetMember]:
    """N commuters on random straight routes across a bounding box."""
    import random

    if n < 1:
        raise ValueError("need at least one commuter")
    rng = random.Random(seed)

    def corner() -> Point:
        return (
            bbox.min_x + rng.random() * bbox.width,
            bbox.min_y + rng.random() * bbox.height,
        )

    return [
        FleetMember(
            name=f"commuter-{i}",
            waypoints=(corner(), corner()),
            use_model_cache=use_model_cache,
            n_queries=n_queries,
        )
        for i in range(n)
    ]


def regional_fleet(
    n_per_region: int,
    grid: RegionGrid,
    use_model_cache: bool = True,
    seed: int = 0,
    n_queries: int = 60,
) -> List[FleetMember]:
    """``n_per_region`` commuters per grid cell, each staying inside its
    own region — the shard-local traffic pattern a region-sharded server
    is built for: every member's requests land on exactly one shard, so
    adding regions adds capacity without adding cross-shard chatter."""
    import random

    if n_per_region < 1:
        raise ValueError("need at least one commuter per region")
    rng = random.Random(seed)
    members: List[FleetMember] = []
    for k in range(grid.n_regions):
        bounds = grid.region(k).bounds

        def inner_point() -> Point:
            # Stay a short margin inside the cell so trajectory jitter
            # cannot wander a member across the region border.
            fx, fy = 0.1 + 0.8 * rng.random(), 0.1 + 0.8 * rng.random()
            return bounds.min_x + fx * bounds.width, bounds.min_y + fy * bounds.height

        members.extend(
            FleetMember(
                name=f"region-{k}-commuter-{i}",
                waypoints=(inner_point(), inner_point()),
                use_model_cache=use_model_cache,
                n_queries=n_queries,
            )
            for i in range(n_per_region)
        )
    return members
