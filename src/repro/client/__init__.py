"""Client side: the smartphone app's query strategies and app features.

* :class:`BaselineClient` — one request/response round trip per query
  tuple (Section 2.3's baseline);
* :class:`ModelCacheClient` — caches ``(t_n, µ, M)`` and answers locally
  while the cover is valid (the paper's model-cache technique);
* :mod:`repro.client.routes` — route recording with per-route pollution
  summary (the Android app feature of Section 3);
* :mod:`repro.client.osha` — OSHA-based health classification and the
  green→red colour scale.
"""

from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.client.osha import HealthLevel, classify_co2, color_for_level
from repro.client.routes import RecordedRoute, RouteRecorder

__all__ = [
    "BaselineClient",
    "ModelCacheClient",
    "HealthLevel",
    "classify_co2",
    "color_for_level",
    "RecordedRoute",
    "RouteRecorder",
]
