"""EnviroMeter: a platform for querying community-sensed data.

A from-scratch reproduction of Sathe et al., PVLDB 6(12), VLDB 2013.
The headline API:

>>> from repro import AdKMNConfig, fit_adkmn, generate_lausanne_dataset
>>> from repro.data.windows import window
>>> ds = generate_lausanne_dataset()                     # doctest: +SKIP
>>> cover = fit_adkmn(window(ds.tuples, 0, 240)).cover   # doctest: +SKIP
>>> cover.predict(t=0.0, x=2000.0, y=1500.0)             # doctest: +SKIP

Sub-packages: ``repro.geo`` (projection/street graph), ``repro.data``
(tuples/windows/synthetic lausanne-data), ``repro.storage`` (embedded
DB), ``repro.index`` (R-tree/STR/VP-tree/grid/k-d), ``repro.models``
(regression families), ``repro.core`` (Ad-KMN + model covers),
``repro.query`` (the three methods + planner), ``repro.network``
(wire protocol + GPRS/3G simulator), ``repro.server`` / ``repro.client``
(platform endpoints), ``repro.app`` (Android/web demo layer),
``repro.eval`` (the paper's figures).
"""

from repro.core import AdKMNConfig, AdKMNResult, ModelCover, fit_adkmn
from repro.data import LausanneConfig, generate_lausanne_dataset
from repro.data.tuples import QueryTuple, RawTuple, TupleBatch

__version__ = "1.0.0"

__all__ = [
    "AdKMNConfig",
    "AdKMNResult",
    "ModelCover",
    "fit_adkmn",
    "LausanneConfig",
    "generate_lausanne_dataset",
    "QueryTuple",
    "RawTuple",
    "TupleBatch",
    "__version__",
]
