"""Traffic accounting from the mobile device's point of view.

Figure 7(b) reports "total number of bytes transmitted and received by
the mobile device, and the total time to complete the query" — this class
is exactly that ledger.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrafficStats:
    """Bytes sent/received, message counts, and elapsed network time."""

    sent_bytes: int = 0
    received_bytes: int = 0
    sent_messages: int = 0
    received_messages: int = 0
    network_time_s: float = 0.0
    compute_time_s: float = 0.0

    def record_sent(self, size_bytes: int, time_s: float = 0.0) -> None:
        if size_bytes < 0 or time_s < 0:
            raise ValueError("sizes and times must be non-negative")
        self.sent_bytes += size_bytes
        self.sent_messages += 1
        self.network_time_s += time_s

    def record_received(self, size_bytes: int, time_s: float = 0.0) -> None:
        if size_bytes < 0 or time_s < 0:
            raise ValueError("sizes and times must be non-negative")
        self.received_bytes += size_bytes
        self.received_messages += 1
        self.network_time_s += time_s

    def record_compute(self, time_s: float) -> None:
        if time_s < 0:
            raise ValueError("times must be non-negative")
        self.compute_time_s += time_s

    @property
    def total_time_s(self) -> float:
        return self.network_time_s + self.compute_time_s

    @property
    def sent_kb(self) -> float:
        return self.sent_bytes / 1024.0

    @property
    def received_kb(self) -> float:
        return self.received_bytes / 1024.0

    def merged_with(self, other: "TrafficStats") -> "TrafficStats":
        """Combined ledger (used when aggregating over many clients)."""
        return TrafficStats(
            sent_bytes=self.sent_bytes + other.sent_bytes,
            received_bytes=self.received_bytes + other.received_bytes,
            sent_messages=self.sent_messages + other.sent_messages,
            received_messages=self.received_messages + other.received_messages,
            network_time_s=self.network_time_s + other.network_time_s,
            compute_time_s=self.compute_time_s + other.compute_time_s,
        )
