"""Wire messages between the EnviroMeter app and the server.

Four message types (Figure 3 and Section 2.3):

* :class:`QueryRequest` — a query tuple ``q_l`` sent by the baseline
  client (one per position update);
* :class:`ValueResponse` — the interpolated value ``ŝ_l`` sent back;
* :class:`ModelRequest` — the model request ``e_l`` sent by a model-cache
  client at initialisation or when the cached cover expires;
* :class:`ModelCoverResponse` — the server's reply carrying
  ``(t_n, µ, M)`` as a serialized cover blob.

Every message has a compact binary body; the HTTP-like framing overhead is
accounted separately in :mod:`repro.network.protocol`, mirroring the real
deployment where each exchange was an HTTP request/response over GPRS/3G.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

from repro.core.cover import ModelCover

_TYPE_QUERY = 1
_TYPE_VALUE = 2
_TYPE_MODEL_REQ = 3
_TYPE_MODEL_RESP = 4


@dataclass(frozen=True)
class QueryRequest:
    """The query tuple ``q_l = (t_l, x_l, y_l)``."""

    t: float
    x: float
    y: float

    def body(self) -> bytes:
        return struct.pack("<Bddd", _TYPE_QUERY, self.t, self.x, self.y)


@dataclass(frozen=True)
class ValueResponse:
    """The interpolated value ``ŝ_l`` (NaN encodes "no data")."""

    t: float
    value: float

    def body(self) -> bytes:
        return struct.pack("<Bdd", _TYPE_VALUE, self.t, self.value)


@dataclass(frozen=True)
class ModelRequest:
    """The model request ``e_l``; carries the client's position so the
    server could, in principle, ship a spatially-trimmed cover."""

    t: float
    x: float
    y: float

    def body(self) -> bytes:
        return struct.pack("<Bddd", _TYPE_MODEL_REQ, self.t, self.x, self.y)


@dataclass(frozen=True)
class ModelCoverResponse:
    """The full cover ``(t_n, µ, M)`` as a serialized blob."""

    blob: bytes

    def body(self) -> bytes:
        return struct.pack("<BI", _TYPE_MODEL_RESP, len(self.blob)) + self.blob

    def cover(self) -> ModelCover:
        return ModelCover.from_blob(self.blob)


Message = Union[QueryRequest, ValueResponse, ModelRequest, ModelCoverResponse]


def encode_message(msg: Message) -> bytes:
    """Binary body of any message."""
    return msg.body()


def decode_message(data: bytes) -> Message:
    """Decode a message body; raises ``ValueError`` on corruption."""
    if not data:
        raise ValueError("empty message")
    mtype = data[0]
    if mtype == _TYPE_QUERY:
        _, t, x, y = struct.unpack("<Bddd", data)
        return QueryRequest(t, x, y)
    if mtype == _TYPE_VALUE:
        _, t, value = struct.unpack("<Bdd", data)
        return ValueResponse(t, value)
    if mtype == _TYPE_MODEL_REQ:
        _, t, x, y = struct.unpack("<Bddd", data)
        return ModelRequest(t, x, y)
    if mtype == _TYPE_MODEL_RESP:
        header = struct.calcsize("<BI")
        _, blob_len = struct.unpack_from("<BI", data, 0)
        blob = data[header : header + blob_len]
        if len(blob) != blob_len:
            raise ValueError("truncated model-cover response")
        if header + blob_len != len(data):
            raise ValueError("trailing bytes in model-cover response")
        return ModelCoverResponse(blob)
    raise ValueError(f"unknown message type {mtype}")
