"""Cellular link simulator.

Models a mobile data bearer by round-trip latency and up/down throughput;
transferring a message costs ``latency/2 + size/throughput`` in each
direction, so one request/response exchange pays one full RTT plus the
serialisation delays.  Presets for the bearers available to the 2013
deployment (GPRS, UMTS/3G, HSPA).

The simulator advances a virtual clock — experiments measure *modelled*
network time (Figure 7(b)'s "total time"), decoupled from host speed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BearerProfile:
    """Radio bearer characteristics."""

    name: str
    rtt_s: float              # round-trip latency
    downlink_bps: float       # server -> device
    uplink_bps: float         # device -> server

    def __post_init__(self) -> None:
        if self.rtt_s <= 0 or self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise ValueError("bearer parameters must be positive")


GPRS = BearerProfile(name="gprs", rtt_s=0.70, downlink_bps=40_000.0, uplink_bps=20_000.0)
UMTS = BearerProfile(name="umts", rtt_s=0.25, downlink_bps=384_000.0, uplink_bps=128_000.0)
HSPA = BearerProfile(name="hspa", rtt_s=0.12, downlink_bps=3_600_000.0, uplink_bps=1_400_000.0)


class CellularLink:
    """A virtual-clock cellular link between the app and the server."""

    def __init__(self, profile: BearerProfile = GPRS) -> None:
        self.profile = profile
        self._clock_s = 0.0

    @property
    def clock_s(self) -> float:
        """Virtual time elapsed on this link."""
        return self._clock_s

    def reset(self) -> None:
        self._clock_s = 0.0

    def send_up(self, size_bytes: int) -> float:
        """Device -> server transfer; returns the time it took."""
        dt = self.profile.rtt_s / 2.0 + (8.0 * size_bytes) / self.profile.uplink_bps
        self._clock_s += dt
        return dt

    def send_down(self, size_bytes: int) -> float:
        """Server -> device transfer; returns the time it took."""
        dt = self.profile.rtt_s / 2.0 + (8.0 * size_bytes) / self.profile.downlink_bps
        self._clock_s += dt
        return dt

    def round_trip(self, up_bytes: int, down_bytes: int) -> float:
        """One request/response exchange; returns its total time."""
        return self.send_up(up_bytes) + self.send_down(down_bytes)
