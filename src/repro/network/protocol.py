"""Transport framing model.

The EnviroMeter Android app exchanged HTTP requests/responses with the
server over GPRS/3G.  For bandwidth accounting what matters is that every
message pays a fixed per-message overhead (HTTP request line / status
line + headers + TCP/IP) on top of its body.  We model that with a
constant, sized from a typical minimal mobile HTTP exchange circa 2013:

* request line or status line            ~20-30 B
* Host / Content-Length / Content-Type   ~90 B
* User-Agent (Android HttpClient)        ~70 B
* Connection + misc headers              ~60 B
* TCP/IP headers for the carrying packet ~40 B * ~2 packets

≈ 350 bytes per message.  The exact constant does not change the shape of
Figure 7(b) — the 113x/31x sent/received gaps come from 100 round trips
versus 1 — but it keeps the absolute kilobyte numbers in a realistic
range.
"""

from __future__ import annotations

FRAME_OVERHEAD_BYTES = 350
"""Fixed per-message transport overhead (HTTP + TCP/IP), bytes."""


def framed_size(body_bytes: int, overhead: int = FRAME_OVERHEAD_BYTES) -> int:
    """Total on-air size of one message."""
    if body_bytes < 0:
        raise ValueError("body size must be non-negative")
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    return body_bytes + overhead
