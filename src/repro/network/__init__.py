"""Network substrate: wire protocol, cellular link model, traffic stats.

The bandwidth experiment (Section 4.2, Figure 7(b)) measures bytes
transmitted/received by the mobile device and total completion time over
GPRS/3G.  This package provides byte-accurate message encoding with
HTTP-like framing (the real EnviroMeter Android app spoke HTTP to the
server), a latency/throughput link simulator, and per-endpoint traffic
accounting.
"""

from repro.network.link import GPRS, HSPA, UMTS, CellularLink
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
    decode_message,
    encode_message,
)
from repro.network.protocol import FRAME_OVERHEAD_BYTES, framed_size
from repro.network.stats import TrafficStats

__all__ = [
    "GPRS",
    "HSPA",
    "UMTS",
    "CellularLink",
    "ModelCoverResponse",
    "ModelRequest",
    "QueryRequest",
    "ValueResponse",
    "decode_message",
    "encode_message",
    "FRAME_OVERHEAD_BYTES",
    "framed_size",
    "TrafficStats",
]
