"""Uniform grid index.

Not in the paper — included as an ablation candidate (DESIGN.md §5.5):
for city-scale data with a fixed 1 km query radius, a coarse uniform grid
is the classic cheap alternative to tree indexes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


class GridIndex:
    """Hash-grid over 2-D points with cell size ``cell_m``.

    ``query_radius`` visits only the cells overlapping the query disk and
    distance-tests the points inside them.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        cell_m: float = 250.0,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if cell_m <= 0:
            raise ValueError("cell size must be positive")
        self._cell = cell_m
        self._xs = [float(v) for v in xs]
        self._ys = [float(v) for v in ys]
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for i in range(len(xs)):
            key = self._key(self._xs[i], self._ys[i])
            self._cells.setdefault(key, []).append(i)

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return math.floor(x / self._cell), math.floor(y / self._cell)

    def __len__(self) -> int:
        return len(self._xs)

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        r2 = radius * radius
        cx0, cy0 = self._key(x - radius, y - radius)
        cx1, cy1 = self._key(x + radius, y + radius)
        out: List[int] = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                for i in bucket:
                    dx = self._xs[i] - x
                    dy = self._ys[i] - y
                    if dx * dx + dy * dy <= r2:
                        out.append(i)
        return out
