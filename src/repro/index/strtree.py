"""Bulk-loaded R-tree via Sort-Tile-Recursive packing (STR).

An optimisation candidate for the metric-space method: the paper's
R-tree (and Pyrtree) inserts points one at a time, which yields
overlapping nodes; STR (Leutenegger et al., 1997) packs a static point
set into near-optimal tiles in one pass.  For EnviroMeter's workload the
window is immutable between cover rebuilds, so bulk loading fits
perfectly — the index ablation quantifies the build- and query-time win.
"""

from __future__ import annotations

import math
from typing import List, Sequence


class _Node:
    __slots__ = ("min_x", "min_y", "max_x", "max_y", "children", "indices")

    def __init__(self) -> None:
        self.min_x = math.inf
        self.min_y = math.inf
        self.max_x = -math.inf
        self.max_y = -math.inf
        self.children: List["_Node"] = []
        self.indices: List[int] = []

    def grow(self, min_x: float, min_y: float, max_x: float, max_y: float) -> None:
        self.min_x = min(self.min_x, min_x)
        self.min_y = min(self.min_y, min_y)
        self.max_x = max(self.max_x, max_x)
        self.max_y = max(self.max_y, max_y)

    def min_dist2(self, x: float, y: float) -> float:
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return dx * dx + dy * dy


class STRTree:
    """Static, STR-packed R-tree over 2-D points with radius search."""

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        leaf_capacity: int = 16,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if leaf_capacity < 2:
            raise ValueError("leaf capacity must be at least 2")
        self._xs = [float(v) for v in xs]
        self._ys = [float(v) for v in ys]
        self._cap = leaf_capacity
        self._root = self._build(list(range(len(xs)))) if len(xs) else None

    def __len__(self) -> int:
        return len(self._xs)

    def _leaf(self, indices: List[int]) -> _Node:
        node = _Node()
        node.indices = indices
        for i in indices:
            node.grow(self._xs[i], self._ys[i], self._xs[i], self._ys[i])
        return node

    def _build(self, indices: List[int]) -> _Node:
        """STR: sort by x, slice into vertical strips of ~sqrt(P) tiles,
        sort each strip by y, cut into leaves; recurse upward."""
        if len(indices) <= self._cap:
            return self._leaf(indices)
        n_leaves = math.ceil(len(indices) / self._cap)
        n_strips = math.ceil(math.sqrt(n_leaves))
        per_strip = math.ceil(len(indices) / n_strips)
        indices = sorted(indices, key=lambda i: self._xs[i])
        leaves: List[_Node] = []
        for s in range(0, len(indices), per_strip):
            strip = sorted(indices[s : s + per_strip], key=lambda i: self._ys[i])
            for off in range(0, len(strip), self._cap):
                leaves.append(self._leaf(strip[off : off + self._cap]))
        # Pack upward until a single root remains.
        level: List[_Node] = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for off in range(0, len(level), self._cap):
                parent = _Node()
                for child in level[off : off + self._cap]:
                    parent.children.append(child)
                    parent.grow(child.min_x, child.min_y, child.max_x, child.max_y)
                parents.append(parent)
            level = parents
        return level[0]

    @property
    def height(self) -> int:
        h = 0
        node = self._root
        while node is not None:
            h += 1
            node = node.children[0] if node.children else None
        return h

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[int] = []
        if self._root is None:
            return out
        r2 = radius * radius
        xs, ys = self._xs, self._ys
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.min_dist2(x, y) > r2:
                continue
            if node.children:
                stack.extend(node.children)
            else:
                for i in node.indices:
                    dx = xs[i] - x
                    dy = ys[i] - y
                    if dx * dx + dy * dy <= r2:
                        out.append(i)
        return out
