"""Common protocol for spatial indexes and the brute-force reference.

The radius search is the only operation the paper's query methods need:
find all raw tuples within ``r`` of the query position (Section 2.2).
All indexes return *indices into the batch they were built from*, so the
caller can average the corresponding sensor values.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class SpatialIndex(Protocol):
    """Structural type implemented by every index in this package."""

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        ...

    def __len__(self) -> int:
        """Number of indexed points."""
        ...


def brute_force_radius(
    xs: Sequence[float], ys: Sequence[float], x: float, y: float, radius: float
) -> List[int]:
    """Reference implementation: linear scan with per-point distance test.

    This is the paper's *naive* search (Section 2.2), also used as the
    test oracle for every index.  Boundary points (distance exactly equal
    to ``radius``) are included.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    r2 = radius * radius
    out: List[int] = []
    for i in range(len(xs)):
        dx = xs[i] - x
        dy = ys[i] - y
        if dx * dx + dy * dy <= r2:
            out.append(i)
    return out


def brute_force_radius_vectorised(
    xs: np.ndarray, ys: np.ndarray, x: float, y: float, radius: float
) -> np.ndarray:
    """Numpy variant of the naive search, used where the comparison being
    benchmarked is not the naive method itself (e.g. accuracy oracles)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    d2 = (np.asarray(xs) - x) ** 2 + (np.asarray(ys) - y) ** 2
    return np.flatnonzero(d2 <= radius * radius)
