"""k-d tree (Bentley, 1975) over 2-D points.

Not in the paper — an ablation candidate alongside the grid index.  Built
by median splits on alternating axes, so the tree is balanced and
construction is deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class _KDNode:
    __slots__ = ("index", "x", "y", "axis", "left", "right")

    def __init__(self, index: int, x: float, y: float, axis: int) -> None:
        self.index = index
        self.x = x
        self.y = y
        self.axis = axis
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None


class KDTree:
    """A balanced k-d tree supporting radius search."""

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        self._size = len(xs)
        items = [(i, float(xs[i]), float(ys[i])) for i in range(len(xs))]
        self._root = self._build(items, axis=0)

    def __len__(self) -> int:
        return self._size

    def _build(self, items: List[tuple], axis: int) -> Optional[_KDNode]:
        if not items:
            return None
        items.sort(key=lambda it: it[1 + axis])
        mid = len(items) // 2
        index, x, y = items[mid]
        node = _KDNode(index, x, y, axis)
        next_axis = 1 - axis
        node.left = self._build(items[:mid], next_axis)
        node.right = self._build(items[mid + 1 :], next_axis)
        return node

    @property
    def height(self) -> int:
        def depth(node: Optional[_KDNode]) -> int:
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[int] = []
        if self._root is None:
            return out
        r2 = radius * radius
        q = (x, y)
        stack = [self._root]
        while stack:
            node = stack.pop()
            dx = node.x - x
            dy = node.y - y
            if dx * dx + dy * dy <= r2:
                out.append(node.index)
            split = node.x if node.axis == 0 else node.y
            qv = q[node.axis]
            if node.left is not None and qv - radius <= split:
                stack.append(node.left)
            if node.right is not None and qv + radius >= split:
                stack.append(node.right)
        return out
