"""Metric-space indexes.

Section 2.2's *Metric Space Indexing* method accelerates the naive radius
search with an R-tree or a VP-tree.  The paper used third-party Python
implementations (Pyrtree [3] and a published VP-tree [4]); this package
provides from-scratch equivalents with the same asymptotics, plus two
extra candidates (uniform grid and k-d tree) used by the index ablation.

Every index implements the :class:`SpatialIndex` protocol: build from a
tuple window, answer ``query_radius(x, y, r) -> indices`` into the window.
"""

from repro.index.base import SpatialIndex, brute_force_radius
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.strtree import STRTree
from repro.index.vptree import VPTree

__all__ = [
    "SpatialIndex",
    "brute_force_radius",
    "GridIndex",
    "KDTree",
    "RTree",
    "STRTree",
    "VPTree",
]
