"""Vantage-point tree (Yianilos, 1993).

Pure-Python substitute for the VP-tree implementation of [4].  Each node
stores a vantage point and the median distance ``mu`` of the remaining
points to it; the inside subtree holds points closer than ``mu``, the
outside subtree the rest.  Radius search prunes a side whenever the
triangle inequality guarantees it cannot contain matches.

Like the implementation the paper used, nodes are individual Python
objects holding boxed floats — which is exactly why the VP-tree is the
most memory-hungry method in Figure 7(a).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence


def _dist(x1: float, x2: float, y1: float, y2: float) -> float:
    """sqrt(dx^2 + dy^2) — deliberately *not* math.hypot: every other
    method in the reproduction (naive scan, R-tree, k-d tree, grid)
    compares squared distances, and hypot's protection against subnormal
    underflow would make the VP-tree disagree with them on points a few
    1e-170 apart."""
    dx = x1 - x2
    dy = y1 - y2
    return math.sqrt(dx * dx + dy * dy)


class _VPNode:
    # Deliberately NOT __slots__: the VP-tree library the paper used [4]
    # builds plain recursive class instances with per-node __dict__s, and
    # Figure 7(a)'s memory ranking (VP-tree as the most expensive method)
    # reflects that representation.  See DESIGN.md §2.
    def __init__(self, index: int, x: float, y: float) -> None:
        self.index = index
        self.x = x
        self.y = y
        self.mu = 0.0
        self.inside: Optional["_VPNode"] = None
        self.outside: Optional["_VPNode"] = None


class VPTree:
    """A VP-tree over 2-D points supporting radius search.

    Construction selects vantage points with a seeded RNG (the classical
    heuristic of sampling a random vantage point), so trees are
    deterministic for a given seed.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        seed: int = 0,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        self._size = len(xs)
        rng = random.Random(seed)
        items = [(i, float(xs[i]), float(ys[i])) for i in range(len(xs))]
        self._root = self._build(items, rng)

    def __len__(self) -> int:
        return self._size

    def _build(self, items: List[tuple], rng: random.Random) -> Optional[_VPNode]:
        # Iterative (explicit work stack): degenerate inputs — e.g. one
        # stationary sensor producing thousands of co-located points —
        # build an O(N)-deep chain, which must not hit the interpreter's
        # recursion limit.
        if not items:
            return None
        root: Optional[_VPNode] = None
        stack: List[tuple] = [(items, None, False)]
        while stack:
            group, parent, is_inside = stack.pop()
            vp_pos = rng.randrange(len(group))
            group[vp_pos], group[-1] = group[-1], group[vp_pos]
            index, vx, vy = group.pop()
            node = _VPNode(index, vx, vy)
            if parent is None:
                root = node
            elif is_inside:
                parent.inside = node
            else:
                parent.outside = node
            if not group:
                continue
            dists = [_dist(x, vx, y, vy) for _, x, y in group]
            mu = _median(dists)
            inside = [it for it, d in zip(group, dists) if d < mu]
            # Degenerate case: the median equals the minimum distance, so
            # the inside ball is empty.  Raise mu to the next distinct
            # distance to keep progress *and* the split invariants
            # (inside: d < mu, outside: d >= mu) that radius pruning
            # relies on — arbitrarily moving points inside without
            # raising mu loses matches for duplicate/equidistant points.
            # When every remaining point is equidistant no
            # invariant-preserving split exists and the node degrades to
            # a chain, which stays correct.
            if not inside:
                larger = [d for d in dists if d > mu]
                if larger:
                    mu = min(larger)
                    inside = [it for it, d in zip(group, dists) if d < mu]
            node.mu = mu
            outside = [it for it, d in zip(group, dists) if d >= mu]
            if inside:
                stack.append((inside, node, True))
            if outside:
                stack.append((outside, node, False))
        return root

    @property
    def height(self) -> int:
        depth = 0
        stack = [(self._root, 1)] if self._root else []
        while stack:
            node, d = stack.pop()
            depth = max(depth, d)
            if node.inside is not None:
                stack.append((node.inside, d + 1))
            if node.outside is not None:
                stack.append((node.outside, d + 1))
        return depth

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[int] = []
        if self._root is None:
            return out
        r2 = radius * radius
        stack = [self._root]
        while stack:
            node = stack.pop()
            dx = node.x - x
            dy = node.y - y
            d2 = dx * dx + dy * dy
            # The inclusion test compares *squared* distances, exactly the
            # float expression the naive scan and every other index use: a
            # boundary tuple whose d2 sits one ulp off r2 must get the
            # same verdict from every method (the sharded gather's
            # byte-identity contract rides on it).
            if d2 <= r2:
                out.append(node.index)
            d = math.sqrt(d2)
            # Triangle-inequality pruning:
            #   the inside ball holds points with dist(vp, p) < mu, so it can
            #   contain a match only if d - radius < mu;
            #   the outside shell holds dist(vp, p) >= mu, so only if
            #   d + radius >= mu.
            # The relative slack absorbs sqrt/summation rounding so a
            # subtree holding an exact-boundary hit is never skipped —
            # pruning may only ever be conservative.
            slack = 1e-9 * (d + radius) + 1e-12
            if node.inside is not None and d - radius < node.mu + slack:
                stack.append(node.inside)
            if node.outside is not None and d + radius >= node.mu - slack:
                stack.append(node.outside)
        return out

    def count_nodes(self) -> int:
        total = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            total += 1
            if node.inside is not None:
                stack.append(node.inside)
            if node.outside is not None:
                stack.append(node.outside)
        return total


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
