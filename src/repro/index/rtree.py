"""R-tree with quadratic split (Guttman, 1984).

Pure-Python substitute for Pyrtree [3].  Points are inserted one at a time
as degenerate rectangles; radius queries descend the tree pruning any node
whose minimum bounding rectangle (MBR) lies farther than ``r`` from the
query point.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


class _Entry:
    """A node entry: an MBR plus either a child node or a point index."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y", "child", "index")

    def __init__(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        child: Optional["_Node"] = None,
        index: int = -1,
    ) -> None:
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self.child = child
        self.index = index

    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def enlargement(self, other: "_Entry") -> float:
        """Area increase needed to also cover ``other``."""
        min_x = min(self.min_x, other.min_x)
        min_y = min(self.min_y, other.min_y)
        max_x = max(self.max_x, other.max_x)
        max_y = max(self.max_y, other.max_y)
        return (max_x - min_x) * (max_y - min_y) - self.area()

    def extend(self, other: "_Entry") -> None:
        self.min_x = min(self.min_x, other.min_x)
        self.min_y = min(self.min_y, other.min_y)
        self.max_x = max(self.max_x, other.max_x)
        self.max_y = max(self.max_y, other.max_y)

    def min_dist2(self, x: float, y: float) -> float:
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return dx * dx + dy * dy


class _Node:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: List[_Entry] = []
        self.is_leaf = is_leaf


class RTree:
    """An R-tree over 2-D points supporting radius search.

    ``max_entries`` is the node fan-out M; ``min_entries`` defaults to
    ceil(M * 0.4) as in Guttman's paper.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        max_entries: int = 8,
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = max(2, math.ceil(max_entries * 0.4))
        self._root = _Node(is_leaf=True)
        self._size = 0
        for i in range(len(xs)):
            self.insert(float(xs[i]), float(ys[i]), i)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            h += 1
        return h

    # -- insertion ----------------------------------------------------------

    def insert(self, x: float, y: float, index: int) -> None:
        """Insert one point (a degenerate rectangle) with payload ``index``."""
        entry = _Entry(x, y, x, y, index=index)
        split = self._insert(self._root, entry)
        if split is not None:
            # Root overflowed: grow the tree by one level.
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries.append(self._cover(old_root))
            self._root.entries.append(self._cover(split))
        self._size += 1

    def _cover(self, node: _Node) -> _Entry:
        """Entry whose MBR covers all of ``node``'s entries."""
        e0 = node.entries[0]
        cover = _Entry(e0.min_x, e0.min_y, e0.max_x, e0.max_y, child=node)
        for e in node.entries[1:]:
            cover.extend(e)
        return cover

    def _insert(self, node: _Node, entry: _Entry) -> Optional[_Node]:
        """Recursive insert; returns the new sibling when ``node`` split."""
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.enlargement(entry), e.area()),
            )
            split = self._insert(best.child, entry)  # type: ignore[arg-type]
            best.extend(entry)
            if split is not None:
                node.entries.append(self._cover(split))
                # Recompute the MBR of the child that was split, since the
                # quadratic split redistributed its entries.
                best_child = best.child
                refreshed = self._cover(best_child)  # type: ignore[arg-type]
                best.min_x, best.min_y = refreshed.min_x, refreshed.min_y
                best.max_x, best.max_y = refreshed.max_x, refreshed.max_y
        if len(node.entries) > self._max:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split: redistribute ``node``'s entries
        between ``node`` and a new sibling; returns the sibling."""
        entries = node.entries
        # Pick the pair of seeds wasting the most area if grouped together.
        worst = -math.inf
        seed_a = seed_b = 0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                a, b = entries[i], entries[j]
                whole = _Entry(
                    min(a.min_x, b.min_x),
                    min(a.min_y, b.min_y),
                    max(a.max_x, b.max_x),
                    max(a.max_y, b.max_y),
                )
                waste = whole.area() - a.area() - b.area()
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        cover_a = _Entry(*_mbr(group_a))
        cover_b = _Entry(*_mbr(group_b))
        rest = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]
        while rest:
            # Honour the minimum fill requirement.
            if len(group_a) + len(rest) == self._min:
                group_a.extend(rest)
                rest = []
                break
            if len(group_b) + len(rest) == self._min:
                group_b.extend(rest)
                rest = []
                break
            # Assign the entry with the strongest preference first.
            best_k = 0
            best_diff = -math.inf
            for k, e in enumerate(rest):
                d_a = cover_a.enlargement(e)
                d_b = cover_b.enlargement(e)
                if abs(d_a - d_b) > best_diff:
                    best_diff = abs(d_a - d_b)
                    best_k = k
            e = rest.pop(best_k)
            if cover_a.enlargement(e) <= cover_b.enlargement(e):
                group_a.append(e)
                cover_a.extend(e)
            else:
                group_b.append(e)
                cover_b.extend(e)
        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        return sibling

    # -- queries ------------------------------------------------------------

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if not self._size:
            return []
        r2 = radius * radius
        out: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for e in node.entries:
                    dx = e.min_x - x
                    dy = e.min_y - y
                    if dx * dx + dy * dy <= r2:
                        out.append(e.index)
            else:
                for e in node.entries:
                    if e.min_dist2(x, y) <= r2:
                        stack.append(e.child)  # type: ignore[arg-type]
        return out

    def count_nodes(self) -> int:
        """Total node count (used by the memory experiment's sanity check)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return total


def _mbr(entries: List[_Entry]) -> Tuple[float, float, float, float]:
    return (
        min(e.min_x for e in entries),
        min(e.min_y for e in entries),
        max(e.max_x for e in entries),
        max(e.max_y for e in entries),
    )
