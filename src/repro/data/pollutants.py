"""Pollutant registry.

Section 2.2: "the sensor value could be any of the pollutants that are
typically monitored: carbon dioxide (CO2), carbon monoxide (CO),
suspended particulate matter, etc."  The evaluation focuses on CO2, but
the platform itself is pollutant-generic: the approximation-error metric
(footnote 1) is explicitly "pollutant specific" via the normal range.

Each :class:`Pollutant` carries the environmental normal range used by
Ad-KMN's τn criterion and the health bands used by the app's colour
scale, so the whole pipeline can run on another pollutant by passing a
different registry entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Pollutant:
    """One monitored pollutant.

    ``normal_range`` is the span the pollutant takes *in the environment*
    (the denominator of the footnote-1 approximation error);
    ``health_bands`` are ascending ``(threshold, label)`` pairs for the
    app's green→red scale, with concentrations below the first threshold
    in the first band.
    """

    key: str
    name: str
    unit: str
    normal_range: Tuple[float, float]
    health_bands: Tuple[Tuple[float, str], ...]
    ambient: float

    def __post_init__(self) -> None:
        lo, hi = self.normal_range
        if hi <= lo:
            raise ValueError(f"{self.key}: invalid normal range {self.normal_range}")
        thresholds = [t for t, _ in self.health_bands]
        if thresholds != sorted(thresholds):
            raise ValueError(f"{self.key}: health bands must be ascending")
        if not self.health_bands:
            raise ValueError(f"{self.key}: needs at least one health band")

    @property
    def range_width(self) -> float:
        lo, hi = self.normal_range
        return hi - lo

    def band(self, value: float) -> str:
        """Label of the health band containing ``value``."""
        if value < 0:
            raise ValueError("concentration cannot be negative")
        label = self.health_bands[-1][1]
        for threshold, band_label in self.health_bands:
            if value < threshold:
                return band_label
        return label


CO2 = Pollutant(
    key="co2",
    name="carbon dioxide",
    unit="ppm",
    normal_range=(350.0, 1000.0),
    health_bands=(
        (450.0, "fresh"),
        (800.0, "acceptable"),
        (1500.0, "elevated"),
        (5000.0, "poor"),        # OSHA 8 h TWA
        (30000.0, "unsafe"),     # short-term limit
    ),
    ambient=400.0,
)

CO = Pollutant(
    key="co",
    name="carbon monoxide",
    unit="ppm",
    normal_range=(0.0, 30.0),
    health_bands=(
        (4.5, "fresh"),
        (9.0, "acceptable"),     # EPA 8 h standard
        (25.0, "elevated"),
        (50.0, "poor"),          # OSHA PEL
        (200.0, "unsafe"),
    ),
    ambient=0.4,
)

PM10 = Pollutant(
    key="pm",
    name="suspended particulate matter (PM10)",
    unit="ug/m3",
    normal_range=(0.0, 150.0),
    health_bands=(
        (20.0, "fresh"),
        (50.0, "acceptable"),    # EU daily limit
        (100.0, "elevated"),
        (150.0, "poor"),         # US daily standard
        (400.0, "unsafe"),
    ),
    ambient=12.0,
)

_REGISTRY: Dict[str, Pollutant] = {p.key: p for p in (CO2, CO, PM10)}


def get_pollutant(key: str) -> Pollutant:
    """Look up a registered pollutant by key ('co2', 'co', 'pm')."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown pollutant {key!r}; known: {sorted(_REGISTRY)}"
        ) from None


def registered_pollutants() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
