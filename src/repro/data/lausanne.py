"""The synthetic *lausanne-data* generator.

Substitutes the proprietary OpenSense trace used in Section 4 of the
paper: two public-transport buses carrying CO2 sensors around Lausanne for
one month at a 60-second sampling interval, yielding ~176 K raw tuples.

The generator is fully deterministic given the seed.  It reproduces the
properties the paper's techniques are designed around:

* **geographic skew** — tuples exist only along the two bus routes;
* **temporal skew** — no tuples while buses are out of service (nights);
* **sensor noise & dropout** — Gaussian noise plus occasional dropped
  samples, modelling the error-prone autonomous sensors of [7, 8];
* **ground truth** — every tuple also records the true field value, and
  the returned dataset keeps a handle to the :class:`PollutionField` so
  accuracy experiments can evaluate NRMSE at arbitrary points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.field import SECONDS_PER_DAY, PollutionField, default_lausanne_field
from repro.data.routes import BusRoute, lausanne_routes
from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import Region


@dataclass(frozen=True)
class LausanneConfig:
    """Parameters of the synthetic deployment.

    Defaults reproduce the paper's dataset scale of 176 K raw tuples over
    30 days from two buses.  Note: 176 K tuples / 30 days / 2 buses exceeds
    what a single 60 s-interval stream can produce in a ~17 h service day,
    so the real OpenSense boxes must have reported more than one sample per
    minute per bus; we model that with a 20 s on-board sampling interval
    and then deterministically subsample down to ``target_tuples``, which
    plays the role of the paper's "sampling interval of 60 seconds" at the
    aggregate rate.
    """

    days: int = 30
    sampling_interval_s: float = 20.0
    seed: int = 7
    noise_ppm: float = 12.0
    dropout_rate: float = 0.015
    gps_jitter_m: float = 8.0
    target_tuples: int = 176_000

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.sampling_interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        if self.noise_ppm < 0 or self.gps_jitter_m < 0:
            raise ValueError("noise parameters must be non-negative")


@dataclass
class LausanneDataset:
    """The generated dataset plus everything experiments need around it."""

    tuples: TupleBatch
    truth: np.ndarray                 # noise-free field value per tuple
    field: PollutionField
    routes: Tuple[BusRoute, ...]
    region: Region
    config: LausanneConfig

    def __len__(self) -> int:
        return len(self.tuples)

    def covered_bbox(self) -> BoundingBox:
        """Bounding box of the positions that actually carry data.

        Queries in the experiments are drawn from this box (the paper's
        queries come from the app's map of Lausanne, i.e. the sensed area).
        """
        return BoundingBox.from_points(zip(self.tuples.x, self.tuples.y))


def _bus_samples(
    route: BusRoute,
    days: int,
    interval_s: float,
    rng: np.random.Generator,
    dropout_rate: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample times/positions for one bus over the deployment.

    Returns time-sorted arrays ``(t, x, y)``; samples outside the service
    window and dropped samples are omitted.
    """
    total_s = days * SECONDS_PER_DAY
    times = np.arange(0.0, total_s, interval_s)
    # Per-day phase offset so the two buses don't stay phase-locked.
    keep: List[int] = []
    xs: List[float] = []
    ys: List[float] = []
    service_start_s = route.service_start_h * 3600.0
    for i, t in enumerate(times):
        t_of_day = t % SECONDS_PER_DAY
        if not route.in_service(t_of_day):
            continue
        if rng.random() < dropout_rate:
            continue
        elapsed = t_of_day - service_start_s
        x, y = route.position_at_service_time(elapsed)
        keep.append(i)
        xs.append(x)
        ys.append(y)
    t_arr = times[np.asarray(keep, dtype=np.intp)] if keep else np.empty(0)
    return t_arr, np.asarray(xs), np.asarray(ys)


def generate_lausanne_dataset(
    config: Optional[LausanneConfig] = None,
    pollution_field: Optional[PollutionField] = None,
    routes: Optional[Sequence[BusRoute]] = None,
) -> LausanneDataset:
    """Generate the synthetic *lausanne-data*.

    Deterministic for a given :class:`LausanneConfig`.  The returned
    dataset's tuples are globally time-sorted (the two bus streams are
    merged), matching an append-only ingest at the server.
    """
    cfg = config or LausanneConfig()
    fld = pollution_field or default_lausanne_field(seed=cfg.seed)
    route_list: Tuple[BusRoute, ...] = tuple(routes) if routes else lausanne_routes()
    rng = np.random.default_rng(cfg.seed)

    parts_t: List[np.ndarray] = []
    parts_x: List[np.ndarray] = []
    parts_y: List[np.ndarray] = []
    for k, route in enumerate(route_list):
        # Independent child generator per bus keeps the trace of one bus
        # stable when the other bus's parameters change.
        bus_rng = np.random.default_rng(cfg.seed * 1_000_003 + k)
        t, x, y = _bus_samples(route, cfg.days, cfg.sampling_interval_s, bus_rng, cfg.dropout_rate)
        if len(t):
            jitter = bus_rng.normal(0.0, cfg.gps_jitter_m, size=(len(t), 2))
            x = x + jitter[:, 0]
            y = y + jitter[:, 1]
        parts_t.append(t)
        parts_x.append(x)
        parts_y.append(y)

    t_all = np.concatenate(parts_t) if parts_t else np.empty(0)
    x_all = np.concatenate(parts_x) if parts_x else np.empty(0)
    y_all = np.concatenate(parts_y) if parts_y else np.empty(0)
    order = np.argsort(t_all, kind="stable")
    t_all, x_all, y_all = t_all[order], x_all[order], y_all[order]

    if cfg.target_tuples and len(t_all) > cfg.target_tuples:
        # Deterministic uniform subsample down to the paper's tuple count;
        # equivalent to a higher sensor dropout rate.
        pick = np.sort(
            rng.choice(len(t_all), size=cfg.target_tuples, replace=False)
        )
        t_all, x_all, y_all = t_all[pick], x_all[pick], y_all[pick]

    truth = fld.values(t_all, x_all, y_all)
    noise = rng.normal(0.0, cfg.noise_ppm, size=len(t_all))
    s_all = np.maximum(truth + noise, 0.0)

    batch = TupleBatch(t_all, x_all, y_all, s_all)
    region = Region(
        name="lausanne",
        bounds=BoundingBox(0.0, 0.0, 6000.0, 4000.0),
    )
    return LausanneDataset(
        tuples=batch,
        truth=truth,
        field=fld,
        routes=route_list,
        region=region,
        config=cfg,
    )


def generate_small_dataset(n_hours: int = 12, seed: int = 7) -> LausanneDataset:
    """A small (< 2 K tuples) dataset for unit tests and examples."""
    cfg = LausanneConfig(days=1, sampling_interval_s=60.0, seed=seed)
    ds = generate_lausanne_dataset(cfg)
    cutoff = n_hours * 3600.0
    n = int(np.searchsorted(ds.tuples.t, cutoff))
    return LausanneDataset(
        tuples=ds.tuples.slice(0, n),
        truth=ds.truth[:n],
        field=ds.field,
        routes=ds.routes,
        region=ds.region,
        config=cfg,
    )
