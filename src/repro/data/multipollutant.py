"""Multi-pollutant sensing — the "CO2, CO, suspended particulate matter,
etc." of Section 2.2.

The paper's evaluation uses CO2 only, but the OpenSense boxes carried
several sensors.  This module derives physically-plausible CO and PM10
fields from the same emission geometry (traffic emits all three, with
pollutant-specific ambient levels, amplitudes and plume spreads) and
generates per-pollutant datasets over the same bus trajectories — so the
whole platform can be exercised end-to-end on any registered pollutant.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.data.field import EmissionSource, PollutionField, default_lausanne_field
from repro.data.lausanne import LausanneConfig, LausanneDataset, generate_lausanne_dataset
from repro.data.pollutants import Pollutant, get_pollutant

# Per-pollutant scaling from the reference CO2 field: how a unit of
# traffic emission shows up in each quantity.
_PROFILES = {
    "co2": {"ambient": 400.0, "amplitude_scale": 1.0, "sigma_scale": 1.0,
            "city_excess": 60.0, "noise": 12.0},
    # CO: near-zero background, sharper plumes (it disperses faster from
    # the carriageway), amplitudes in single-digit ppm.
    "co": {"ambient": 0.4, "amplitude_scale": 0.02, "sigma_scale": 0.7,
           "city_excess": 1.2, "noise": 0.35},
    # PM10: moderate background, wide plumes (resuspension spreads it),
    # amplitudes in tens of ug/m3.
    "pm": {"ambient": 14.0, "amplitude_scale": 0.25, "sigma_scale": 1.3,
           "city_excess": 10.0, "noise": 4.0},
}


def field_for_pollutant(key: str, seed: int = 7) -> PollutionField:
    """The synthetic field for a registered pollutant.

    All pollutants share the CO2 field's emission geometry (same
    junctions and industry emit all of them) with pollutant-specific
    ambient level, plume amplitude and spread.
    """
    get_pollutant(key)  # validate the key against the registry
    profile = _PROFILES[key]
    reference = default_lausanne_field(seed=seed)
    sources = tuple(
        EmissionSource(
            x=src.x,
            y=src.y,
            amplitude_ppm=src.amplitude_ppm * profile["amplitude_scale"],
            sigma_m=src.sigma_m * profile["sigma_scale"],
            traffic_coupling=src.traffic_coupling,
        )
        for src in reference.sources
    )
    return PollutionField(
        sources=sources,
        cycle=reference.cycle,
        ambient_ppm=profile["ambient"],
        city_traffic_excess_ppm=profile["city_excess"],
    )


def generate_pollutant_dataset(
    key: str,
    config: Optional[LausanneConfig] = None,
) -> LausanneDataset:
    """lausanne-data for one pollutant, on the standard bus trajectories.

    Sensor noise is scaled to the pollutant's measurement scale.
    """
    get_pollutant(key)  # validates the key
    cfg = config or LausanneConfig()
    cfg = replace(cfg, noise_ppm=_PROFILES[key]["noise"])
    return generate_lausanne_dataset(cfg, pollution_field=field_for_pollutant(key, cfg.seed))


def generate_all_pollutants(
    config: Optional[LausanneConfig] = None,
) -> Dict[str, LausanneDataset]:
    """One dataset per registered pollutant, sharing trajectories."""
    from repro.data.pollutants import registered_pollutants

    return {key: generate_pollutant_dataset(key, config) for key in registered_pollutants()}


def tau_for_pollutant(key: str, tau_pct: float = 2.0) -> Dict[str, object]:
    """Ad-KMN configuration kwargs for a pollutant: same τn percentage,
    pollutant-specific normal range (footnote 1 is 'pollutant specific')."""
    pollutant: Pollutant = get_pollutant(key)
    return {"tau_n_pct": tau_pct, "normal_range": pollutant.normal_range}
