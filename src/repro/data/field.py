"""Ground-truth spatio-temporal CO2 field.

The real *lausanne-data* has no accessible ground truth; the synthetic
replacement gives us one, which the accuracy experiment (Figure 6(b)) uses
to compute NRMSE for both the naive method and the model cover.

The field is a sum of

* an ambient background (outdoor CO2 is ~400 ppm),
* a city-wide diurnal traffic cycle (morning and evening rush peaks),
* a set of localized Gaussian emission plumes (road junctions, industry),
  each modulated by the traffic cycle, and
* optional measurement noise applied by the sampler (not the field).

The field is smooth in space and time, with strong spatial gradients near
the plumes — exactly the regime where a per-subregion linear model beats a
radius-average, because a 1 km radius average mixes high- and low-pollution
neighbourhoods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

SECONDS_PER_DAY = 86_400.0

AMBIENT_CO2_PPM = 400.0
"""Typical outdoor background CO2 concentration."""


@dataclass(frozen=True)
class EmissionSource:
    """A localized Gaussian plume centred at ``(x, y)``.

    ``amplitude_ppm`` is the peak CO2 excess at the centre at full traffic;
    ``sigma_m`` controls the plume's spatial extent; ``traffic_coupling``
    in [0, 1] is how strongly the plume follows the diurnal traffic cycle
    (1 = road junction, 0 = constant industrial source).
    """

    x: float
    y: float
    amplitude_ppm: float
    sigma_m: float
    traffic_coupling: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma_m <= 0:
            raise ValueError("plume sigma must be positive")
        if self.amplitude_ppm < 0:
            raise ValueError("plume amplitude must be non-negative")
        if not 0.0 <= self.traffic_coupling <= 1.0:
            raise ValueError("traffic coupling must be in [0, 1]")

    def excess_at(self, x: np.ndarray, y: np.ndarray, traffic: np.ndarray) -> np.ndarray:
        """Plume contribution in ppm at positions ``(x, y)`` given the
        instantaneous traffic intensity (array broadcastable with x/y)."""
        d2 = (x - self.x) ** 2 + (y - self.y) ** 2
        spatial = np.exp(-d2 / (2.0 * self.sigma_m**2))
        modulation = (1.0 - self.traffic_coupling) + self.traffic_coupling * traffic
        return self.amplitude_ppm * spatial * modulation


@dataclass(frozen=True)
class DiurnalTrafficCycle:
    """City-wide traffic intensity in [0, 1] as a function of time of day.

    Two Gaussian rush-hour bumps (default 08:00 and 18:00) on a baseline.
    Weekends (days 5 and 6 of each week) are scaled down.
    """

    morning_peak_h: float = 8.0
    evening_peak_h: float = 18.0
    peak_width_h: float = 1.8
    baseline: float = 0.15
    weekend_factor: float = 0.45

    def intensity(self, t: np.ndarray) -> np.ndarray:
        """Traffic intensity in [0, 1] at times ``t`` (seconds from start)."""
        t = np.asarray(t, dtype=np.float64)
        hour = (t % SECONDS_PER_DAY) / 3600.0
        morning = np.exp(-((hour - self.morning_peak_h) ** 2) / (2 * self.peak_width_h**2))
        evening = np.exp(-((hour - self.evening_peak_h) ** 2) / (2 * self.peak_width_h**2))
        raw = self.baseline + (1.0 - self.baseline) * np.maximum(morning, evening)
        day = (t // SECONDS_PER_DAY).astype(np.int64) % 7
        weekend = (day == 5) | (day == 6)
        return np.where(weekend, raw * self.weekend_factor, raw)


@dataclass(frozen=True)
class PollutionField:
    """The complete synthetic CO2 field ``s(t, x, y)`` in ppm."""

    sources: Sequence[EmissionSource]
    cycle: DiurnalTrafficCycle = field(default_factory=DiurnalTrafficCycle)
    ambient_ppm: float = AMBIENT_CO2_PPM
    city_traffic_excess_ppm: float = 60.0

    def value(self, t: float, x: float, y: float) -> float:
        """Scalar field value at a single space-time point."""
        return float(
            self.values(
                np.asarray([t]), np.asarray([x], dtype=float), np.asarray([y], dtype=float)
            )[0]
        )

    def values(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised field evaluation (ppm)."""
        t = np.asarray(t, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        traffic = self.cycle.intensity(t)
        out = np.full(np.broadcast(t, x, y).shape, self.ambient_ppm, dtype=np.float64)
        out = out + self.city_traffic_excess_ppm * traffic
        for src in self.sources:
            out = out + src.excess_at(x, y, traffic)
        return out

    def grid(
        self, t: float, xs: np.ndarray, ys: np.ndarray
    ) -> np.ndarray:
        """Field sampled on the Cartesian product ``ys x xs`` at time ``t``.

        Returns an array of shape ``(len(ys), len(xs))`` (row = y), the
        layout the heatmap renderer expects.
        """
        gx, gy = np.meshgrid(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float))
        return self.values(np.full(gx.shape, t), gx, gy)


def default_lausanne_field(seed: int = 7) -> PollutionField:
    """The standard field used by the synthetic *lausanne-data*.

    Plume positions are fixed (they model real road junctions and the
    industrial area near the lake) but a seed is accepted so ablations can
    generate perturbed cities.
    """
    rng = np.random.default_rng(seed)
    # Region is roughly 6 km x 4 km; coordinates in metres, origin at the
    # south-west corner of central Lausanne.
    base_sources: List[EmissionSource] = [
        EmissionSource(x=1500.0, y=1200.0, amplitude_ppm=240.0, sigma_m=420.0),  # gare
        EmissionSource(x=3100.0, y=2300.0, amplitude_ppm=190.0, sigma_m=380.0),  # centre
        EmissionSource(x=4600.0, y=1000.0, amplitude_ppm=150.0, sigma_m=520.0,
                       traffic_coupling=0.35),  # industrial, weak diurnal coupling
        EmissionSource(x=900.0, y=3100.0, amplitude_ppm=120.0, sigma_m=300.0),  # north-west
        EmissionSource(x=5200.0, y=3200.0, amplitude_ppm=170.0, sigma_m=340.0),  # north-east
        EmissionSource(x=2400.0, y=400.0, amplitude_ppm=140.0, sigma_m=460.0,
                       traffic_coupling=0.6),  # lakeside road
    ]
    # A few smaller random hotspots for texture.
    for _ in range(4):
        base_sources.append(
            EmissionSource(
                x=float(rng.uniform(500.0, 5500.0)),
                y=float(rng.uniform(300.0, 3700.0)),
                amplitude_ppm=float(rng.uniform(40.0, 90.0)),
                sigma_m=float(rng.uniform(180.0, 320.0)),
                traffic_coupling=float(rng.uniform(0.5, 1.0)),
            )
        )
    return PollutionField(sources=tuple(base_sources))
