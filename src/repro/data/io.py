"""CSV import/export of raw tuple batches.

The OpenSense pipeline dumped raw tuples into a database; this module is
the file-level equivalent so that generated datasets can be persisted and
re-loaded without re-running the simulator (the benchmark harness caches
the 176 K-tuple dataset this way).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.tuples import TupleBatch

_HEADER = ("t", "x", "y", "s")


def write_tuples_csv(batch: TupleBatch, path: Union[str, Path]) -> None:
    """Write a tuple batch as CSV with a ``t,x,y,s`` header."""
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_HEADER)
        for i in range(len(batch)):
            writer.writerow(
                (
                    repr(float(batch.t[i])),
                    repr(float(batch.x[i])),
                    repr(float(batch.y[i])),
                    repr(float(batch.s[i])),
                )
            )


def read_tuples_csv(path: Union[str, Path]) -> TupleBatch:
    """Read a tuple batch written by :func:`write_tuples_csv`.

    Raises ``ValueError`` on a malformed header or row, rather than
    silently mis-parsing sensor data.
    """
    path = Path(path)
    ts, xs, ys, ss = [], [], [], []
    with path.open(newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        if tuple(header) != _HEADER:
            raise ValueError(f"{path}: expected header {_HEADER}, got {tuple(header)}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            try:
                ts.append(float(row[0]))
                xs.append(float(row[1]))
                ys.append(float(row[2]))
                ss.append(float(row[3]))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric value: {exc}") from None
    return TupleBatch(
        np.asarray(ts), np.asarray(xs), np.asarray(ys), np.asarray(ss)
    )
