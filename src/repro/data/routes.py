"""Bus routes over the Lausanne street layout.

The OpenSense deployment mounted sensors on two public-transport buses.
Each :class:`BusRoute` is a closed polyline of waypoints (metres in the
local frame) together with a cruising speed and a service window; the
trajectory sampler in :mod:`repro.data.lausanne` drives a bus back and
forth along the polyline while it is in service and parks it at the depot
(first waypoint) otherwise — producing the geo-temporal skew the paper
describes: no data off-route, no data at night.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.geo.coords import euclidean

Point = Tuple[float, float]


@dataclass(frozen=True)
class BusRoute:
    """A bus line: waypoints, speed, and daily service window.

    ``service_start_h``/``service_end_h`` are hours of day; the bus shuttles
    A->B->A along the waypoints while in service.
    """

    name: str
    waypoints: Tuple[Point, ...]
    speed_mps: float = 7.0          # ~25 km/h urban average incl. stops
    service_start_h: float = 6.0
    service_end_h: float = 23.0
    dwell_s: float = 25.0           # stop dwell time at each waypoint

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a route needs at least two waypoints")
        if self.speed_mps <= 0:
            raise ValueError("speed must be positive")
        if not 0.0 <= self.service_start_h < self.service_end_h <= 24.0:
            raise ValueError("invalid service window")

    # -- geometry ----------------------------------------------------------

    def leg_lengths(self) -> List[float]:
        """Length in metres of every leg between consecutive waypoints."""
        out = []
        for (x1, y1), (x2, y2) in zip(self.waypoints, self.waypoints[1:]):
            out.append(euclidean(x1, y1, x2, y2))
        return out

    @property
    def length_m(self) -> float:
        """One-way route length in metres."""
        return sum(self.leg_lengths())

    def one_way_duration_s(self) -> float:
        """Travel time A->B including dwell at intermediate stops."""
        travel = self.length_m / self.speed_mps
        dwell = self.dwell_s * max(0, len(self.waypoints) - 2)
        return travel + dwell

    def in_service(self, t_of_day_s: float) -> bool:
        """Whether the bus is in service at ``t_of_day_s`` seconds past
        midnight."""
        h = t_of_day_s / 3600.0
        return self.service_start_h <= h < self.service_end_h

    def position_at_offset(self, offset_m: float) -> Point:
        """Point at ``offset_m`` metres along the one-way polyline.

        Offsets are clamped to ``[0, length_m]``; dwell time is handled by
        the trajectory sampler, not here.
        """
        offset = min(max(offset_m, 0.0), self.length_m)
        remaining = offset
        for (x1, y1), (x2, y2), leg in zip(
            self.waypoints, self.waypoints[1:], self.leg_lengths()
        ):
            if remaining <= leg or leg == 0.0:
                if leg == 0.0:
                    return x1, y1
                f = remaining / leg
                return x1 + f * (x2 - x1), y1 + f * (y2 - y1)
            remaining -= leg
        return self.waypoints[-1]

    def position_at_service_time(self, service_elapsed_s: float) -> Point:
        """Bus position ``service_elapsed_s`` seconds after entering
        service, shuttling back and forth with dwell at the termini."""
        one_way = self.one_way_duration_s() + self.dwell_s  # dwell at terminus
        cycle = 2.0 * one_way
        phase = service_elapsed_s % cycle
        if phase >= one_way:
            phase = cycle - phase  # mirrored return leg
        # Convert elapsed time (with dwell) to distance along the polyline:
        # approximate by removing a proportional share of dwell time.
        travel_time = self.length_m / self.speed_mps
        total = self.one_way_duration_s()
        travel_fraction = min(phase / total, 1.0) if total > 0 else 0.0
        return self.position_at_offset(travel_fraction * (travel_time * self.speed_mps))

    @property
    def depot(self) -> Point:
        return self.waypoints[0]


def lausanne_routes() -> Tuple[BusRoute, BusRoute]:
    """The two bus lines of the synthetic deployment.

    Line A crosses the city east-west through the gare and centre plumes;
    line B runs south-north through the lakeside and the north-west plume.
    Both pass near (but not exactly through) emission maxima, as real roads
    do, and together cover most — not all — of the region, leaving the
    spatial gaps that make radius-averaging inaccurate.
    """
    line_a = BusRoute(
        name="line-A",
        waypoints=(
            (300.0, 900.0),
            (1000.0, 1100.0),
            (1600.0, 1300.0),   # gare junction
            (2300.0, 1700.0),
            (3000.0, 2200.0),   # centre
            (3800.0, 2500.0),
            (4600.0, 2800.0),
            (5300.0, 3100.0),   # north-east
        ),
        speed_mps=7.0,
        service_start_h=6.0,
        service_end_h=23.0,
    )
    line_b = BusRoute(
        name="line-B",
        waypoints=(
            (2600.0, 300.0),    # lakeside
            (2300.0, 900.0),
            (2000.0, 1500.0),
            (1700.0, 2100.0),
            (1300.0, 2600.0),
            (1000.0, 3000.0),   # north-west
            (700.0, 3500.0),
        ),
        speed_mps=6.5,
        service_start_h=5.5,
        service_end_h=22.5,
    )
    return line_a, line_b
