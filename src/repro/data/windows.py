"""Tuple windows ``W_c``.

The paper computes each model cover from a window of raw tuples
``W_c = <b_i | cH <= t_i <= (c+1)H>`` where ``H`` is the window length
(Section 2.1).  The evaluation (Section 4.1) then *counts* the window in
raw tuples ("window size H from 40 to 240 raw tuples (4 hour window)") —
240 tuples at 60 s sampling from a single stream is 4 hours.  Both views
are supported:

* :func:`window` / :func:`iter_windows` — count-based windows over a
  time-sorted batch, matching the evaluation's H-in-tuples convention;
* :class:`WindowSpec` — time-based windows matching the formal definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch


def window(batch: TupleBatch, c: int, h: int) -> TupleBatch:
    """The ``c``-th count-based window of ``h`` tuples (zero-copy slice).

    The final window may be shorter than ``h``.  Raises ``IndexError`` when
    ``c`` is past the end of the batch.
    """
    if h <= 0:
        raise ValueError("window size h must be positive")
    if c < 0:
        raise ValueError("window index c must be non-negative")
    start = c * h
    if start >= len(batch):
        raise IndexError(f"window {c} (h={h}) starts past the end of the batch")
    return batch.slice(start, min(start + h, len(batch)))


def count_windows(batch: TupleBatch, h: int) -> int:
    """Number of count-based windows of size ``h`` covering ``batch``."""
    if h <= 0:
        raise ValueError("window size h must be positive")
    return (len(batch) + h - 1) // h


def sealed_window_count(n_rows: int, h: int) -> int:
    """Number of *sealed* count-windows in an ``n_rows`` stream.

    A count-window is sealed once it holds its full ``h`` tuples: appends
    only ever land in later rows, so its contents can never change again.
    """
    if h <= 0:
        raise ValueError("window size h must be positive")
    if n_rows < 0:
        raise ValueError("row count must be non-negative")
    return n_rows // h


def windows_for_times(sorted_t: np.ndarray, ts, h: int) -> np.ndarray:
    """Count-window index responsible for each query timestamp.

    A query at time ``t`` is answered from the window holding the latest
    tuple not after ``t`` (the lazy-update policy), or window 0 when
    ``t`` predates the stream.  One vectorized binary search; the single
    shared implementation behind the server's and the query engine's
    window assignment.
    """
    if h <= 0:
        raise ValueError("window size h must be positive")
    pos = np.searchsorted(sorted_t, np.asarray(ts, dtype=np.float64), side="right")
    return np.maximum(pos - 1, 0) // h


def touched_windows(start_row: int, n_rows: int, h: int) -> range:
    """Count-window indices covered by appended rows ``[start_row,
    start_row + n_rows)`` — the windows an ingest batch can invalidate."""
    if h <= 0:
        raise ValueError("window size h must be positive")
    if start_row < 0:
        raise ValueError("start row must be non-negative")
    if n_rows <= 0:
        return range(0)
    return range(start_row // h, (start_row + n_rows - 1) // h + 1)


def window_boundaries_in(start_row: int, n_rows: int, h: int) -> range:
    """Global row positions of count-window boundaries crossed by an
    append of ``n_rows`` rows at ``start_row`` — the multiples of ``h`` in
    ``(start_row, start_row + n_rows]``.

    These are the points where a shard router must record per-shard cut
    offsets: every boundary ``b`` separates window ``b // h - 1`` from
    window ``b // h`` in the *global* stream order.
    """
    if h <= 0:
        raise ValueError("window size h must be positive")
    if start_row < 0:
        raise ValueError("start row must be non-negative")
    if n_rows < 0:
        raise ValueError("row count must be non-negative")
    first = (start_row // h + 1) * h
    return range(first, start_row + n_rows + 1, h)


def iter_windows(batch: TupleBatch, h: int) -> Iterator[Tuple[int, TupleBatch]]:
    """Yield ``(c, W_c)`` for every count-based window of ``batch``."""
    for c in range(count_windows(batch, h)):
        yield c, window(batch, c, h)


@dataclass(frozen=True)
class WindowSlices(Sequence):
    """Zero-copy per-window (count-based) view of a batch.

    ``slices[c]`` is window ``W_c`` as a :class:`TupleBatch` slice sharing
    the parent batch's storage; ``is_sealed(c)`` tells whether the window
    already holds its full ``h`` tuples and is therefore immutable.
    """

    batch: TupleBatch
    h: int

    def __post_init__(self) -> None:
        if self.h <= 0:
            raise ValueError("window size h must be positive")

    def __len__(self) -> int:
        return count_windows(self.batch, self.h)

    def __getitem__(self, c: int) -> TupleBatch:
        if not isinstance(c, (int, np.integer)):
            raise TypeError("window index must be an integer")
        c = int(c)
        if c < 0:
            c += len(self)
            if c < 0:
                raise IndexError("window index out of range")
        return window(self.batch, c, self.h)

    def sealed_count(self) -> int:
        """Number of leading windows that are full and immutable."""
        return sealed_window_count(len(self.batch), self.h)

    def is_sealed(self, c: int) -> bool:
        return 0 <= c < self.sealed_count()


@dataclass(frozen=True)
class WindowSpec:
    """Time-based windowing ``W_c = <b_i | cH <= t_i < (c+1)H>``.

    ``horizon_s`` is the window length H in seconds.  The window's validity
    deadline ``t_n = (c+1)H`` is what the server ships to model-cache
    clients (Section 2.3).
    """

    horizon_s: float

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError("window horizon must be positive")

    def window_index(self, t: float) -> int:
        """Index ``c`` of the window containing time ``t``."""
        if t < 0:
            raise ValueError("time must be non-negative")
        return int(t // self.horizon_s)

    def bounds(self, c: int) -> Tuple[float, float]:
        """Half-open time bounds ``[cH, (c+1)H)`` of window ``c``."""
        if c < 0:
            raise ValueError("window index must be non-negative")
        return c * self.horizon_s, (c + 1) * self.horizon_s

    def valid_until(self, c: int) -> float:
        """The validity deadline ``t_n`` of window ``c``'s model cover."""
        return self.bounds(c)[1]

    def select(self, batch: TupleBatch, c: int) -> TupleBatch:
        """Tuples of ``batch`` falling in window ``c``.

        Uses a binary search when the batch is time-sorted (the common
        case for append-only sensor streams) and a mask otherwise.
        """
        lo, hi = self.bounds(c)
        if batch.is_time_sorted():
            start = int(np.searchsorted(batch.t, lo, side="left"))
            stop = int(np.searchsorted(batch.t, hi, side="left"))
            return batch.slice(start, stop)
        mask = (batch.t >= lo) & (batch.t < hi)
        return batch.select_mask(mask)

    def iter_nonempty(self, batch: TupleBatch) -> Iterator[Tuple[int, TupleBatch]]:
        """Yield ``(c, W_c)`` for every non-empty window of ``batch``."""
        if not len(batch):
            return
        t_min, t_max = float(np.min(batch.t)), float(np.max(batch.t))
        for c in range(self.window_index(t_min), self.window_index(t_max) + 1):
            w = self.select(batch, c)
            if len(w):
                yield c, w
