"""Sensor data quality screening.

The paper's related work motivates this directly: community sensors
"become error-prone or run out of battery" ([7, 8], Section 1), yet the
modeling pipeline assumes tuples are roughly trustworthy.  This module
is the screen between ingestion and modeling:

* **range check** — values outside the pollutant's physical range
  (stuck-at-zero sensors, saturated ADCs);
* **region check** — positions outside the monitored region R
  (GPS glitches);
* **spike check** — robust outlier detection per window via the median
  absolute deviation (MAD), which tolerates the heavy tails a plume
  passage produces better than a mean/std screen;
* **duplicate check** — repeated (t, x, y) tuples from uplink retries.

``screen_window`` composes them and returns both the clean batch and a
per-check rejection tally, so deployments can monitor sensor health.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.geo.region import Region

_MAD_TO_STD = 1.4826
"""MAD of a normal distribution is sigma / 1.4826."""


@dataclass(frozen=True)
class QualityConfig:
    """Screening thresholds.

    ``physical_range`` is the sensor's representable range (wider than
    the environmental normal range: a 2000 ppm street-canyon reading is
    rare but real; a negative one is not).  ``mad_threshold`` is the
    robust z-score beyond which a value is a spike.
    """

    physical_range: Tuple[float, float] = (0.0, 10_000.0)
    mad_threshold: float = 6.0
    drop_duplicates: bool = True

    def __post_init__(self) -> None:
        lo, hi = self.physical_range
        if hi <= lo:
            raise ValueError(f"invalid physical range: {self.physical_range}")
        if self.mad_threshold <= 0:
            raise ValueError("MAD threshold must be positive")


@dataclass
class QualityReport:
    """Per-check rejection counts for one screened window."""

    total: int = 0
    kept: int = 0
    out_of_range: int = 0
    out_of_region: int = 0
    spikes: int = 0
    duplicates: int = 0

    @property
    def rejected(self) -> int:
        return self.total - self.kept

    @property
    def rejection_rate(self) -> float:
        return 0.0 if not self.total else self.rejected / self.total


def range_mask(batch: TupleBatch, physical_range: Tuple[float, float]) -> np.ndarray:
    """True for tuples inside the sensor's physical range."""
    lo, hi = physical_range
    return (batch.s >= lo) & (batch.s <= hi)


def region_mask(batch: TupleBatch, region: Region) -> np.ndarray:
    """True for tuples positioned inside the monitored region."""
    b = region.bounds
    return (
        (batch.x >= b.min_x)
        & (batch.x <= b.max_x)
        & (batch.y >= b.min_y)
        & (batch.y <= b.max_y)
    )


def spike_mask(batch: TupleBatch, mad_threshold: float) -> np.ndarray:
    """True for tuples whose robust z-score is within the threshold.

    With fewer than 5 tuples, or a zero MAD (constant window), everything
    passes — there is no distribution to screen against.
    """
    if len(batch) < 5:
        return np.ones(len(batch), dtype=bool)
    median = float(np.median(batch.s))
    mad = float(np.median(np.abs(batch.s - median)))
    if mad <= 0.0:
        return np.ones(len(batch), dtype=bool)
    robust_z = np.abs(batch.s - median) / (mad * _MAD_TO_STD)
    return robust_z <= mad_threshold


def duplicate_mask(batch: TupleBatch) -> np.ndarray:
    """True for the first occurrence of each (t, x, y); retransmitted
    tuples (identical key, any value) are dropped."""
    seen: Dict[Tuple[float, float, float], bool] = {}
    keep = np.ones(len(batch), dtype=bool)
    for i in range(len(batch)):
        key = (float(batch.t[i]), float(batch.x[i]), float(batch.y[i]))
        if key in seen:
            keep[i] = False
        else:
            seen[key] = True
    return keep


def screen_window(
    batch: TupleBatch,
    config: Optional[QualityConfig] = None,
    region: Optional[Region] = None,
) -> Tuple[TupleBatch, QualityReport]:
    """Apply all checks; returns (clean batch, rejection report).

    Checks are applied in order (range, region, duplicates, spikes) and a
    tuple is charged to the *first* check it fails, so the tally sums to
    the rejected count.  The spike screen runs on the survivors of the
    earlier checks — a stuck-at-9999 sensor should not inflate the MAD.
    """
    cfg = config or QualityConfig()
    report = QualityReport(total=len(batch))
    if not len(batch):
        return batch, report

    keep = np.ones(len(batch), dtype=bool)

    bad_range = ~range_mask(batch, cfg.physical_range)
    report.out_of_range = int(np.sum(bad_range & keep))
    keep &= ~bad_range

    if region is not None:
        bad_region = ~region_mask(batch, region)
        report.out_of_region = int(np.sum(bad_region & keep))
        keep &= ~bad_region

    if cfg.drop_duplicates:
        dup = ~duplicate_mask(batch)
        report.duplicates = int(np.sum(dup & keep))
        keep &= ~dup

    survivors = batch.select_mask(keep)
    spike_ok = spike_mask(survivors, cfg.mad_threshold)
    report.spikes = int(np.sum(~spike_ok))
    clean = survivors.select_mask(spike_ok)

    report.kept = len(clean)
    return clean, report
