"""Raw tuples, query tuples and columnar tuple batches.

The paper's raw tuple is ``b_i = (t_i, x_i, y_i, s_i)`` — timestamp,
position in the local frame, sensor value — and the query tuple is
``q_l = (t_l, x_l, y_l)`` (Section 2.1/2.2).  :class:`TupleBatch` is the
columnar (structure-of-arrays) representation the storage engine and the
model fitting code operate on; :class:`RawTuple` is the row view used at
API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, slots=True)
class RawTuple:
    """One community-sensed measurement ``b_i = (t_i, x_i, y_i, s_i)``.

    ``t`` is seconds since the start of the deployment, ``x``/``y`` are
    metres in the local frame, ``s`` is the sensor value (ppm for CO2).
    """

    t: float
    x: float
    y: float
    s: float

    def position(self) -> Tuple[float, float]:
        return self.x, self.y


@dataclass(frozen=True, slots=True)
class QueryTuple:
    """A mobile object's query ``q_l = (t_l, x_l, y_l)``."""

    t: float
    x: float
    y: float

    def position(self) -> Tuple[float, float]:
        return self.x, self.y


class TupleBatch:
    """Columnar batch of raw tuples backed by numpy arrays.

    Immutable by convention: the arrays are exposed read-only so that
    windows can be cheap zero-copy slices of the full dataset.
    """

    __slots__ = ("t", "x", "y", "s")

    def __init__(
        self,
        t: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        s: np.ndarray,
    ) -> None:
        arrays = []
        for name, arr in (("t", t), ("x", x), ("y", y), ("s", s)):
            a = np.asarray(arr, dtype=np.float64)
            if a.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            arrays.append(a)
        n = len(arrays[0])
        if any(len(a) != n for a in arrays):
            raise ValueError("all columns must have the same length")
        for a in arrays:
            a.flags.writeable = False
        self.t, self.x, self.y, self.s = arrays

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[RawTuple]) -> "TupleBatch":
        rows = list(rows)
        return cls(
            np.array([r.t for r in rows], dtype=np.float64),
            np.array([r.x for r in rows], dtype=np.float64),
            np.array([r.y for r in rows], dtype=np.float64),
            np.array([r.s for r in rows], dtype=np.float64),
        )

    @classmethod
    def empty(cls) -> "TupleBatch":
        z = np.empty(0, dtype=np.float64)
        return cls(z, z.copy(), z.copy(), z.copy())

    # -- container protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self.t)

    def __iter__(self) -> Iterator[RawTuple]:
        for i in range(len(self)):
            yield self.row(i)

    def row(self, i: int) -> RawTuple:
        return RawTuple(
            float(self.t[i]), float(self.x[i]), float(self.y[i]), float(self.s[i])
        )

    def slice(self, start: int, stop: int) -> "TupleBatch":
        """Zero-copy contiguous slice ``[start, stop)``."""
        return TupleBatch(
            self.t[start:stop], self.x[start:stop], self.y[start:stop], self.s[start:stop]
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "TupleBatch":
        idx = np.asarray(indices, dtype=np.intp)
        return TupleBatch(self.t[idx], self.x[idx], self.y[idx], self.s[idx])

    def select_mask(self, mask: np.ndarray) -> "TupleBatch":
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise ValueError("mask length must match batch length")
        return TupleBatch(self.t[mask], self.x[mask], self.y[mask], self.s[mask])

    # -- convenience ------------------------------------------------------

    def is_view_of(self, other: "TupleBatch") -> bool:
        """True when every column of ``self`` shares memory with ``other``
        — i.e. this batch is a zero-copy view (slice/snapshot) of it.
        Empty batches own no storage and are never views of anything."""
        if not len(self):
            return False
        return all(
            np.shares_memory(getattr(self, name), getattr(other, name))
            for name in ("t", "x", "y", "s")
        )

    def positions(self) -> np.ndarray:
        """``(n, 2)`` array of positions (a copy)."""
        return np.column_stack((self.x, self.y))

    def rows(self) -> List[RawTuple]:
        return list(self)

    def time_span(self) -> Tuple[float, float]:
        if not len(self):
            raise ValueError("empty batch has no time span")
        return float(self.t[0]), float(self.t[-1])

    def is_time_sorted(self) -> bool:
        return bool(np.all(np.diff(self.t) >= 0.0)) if len(self) > 1 else True

    def concat(self, other: "TupleBatch") -> "TupleBatch":
        return TupleBatch(
            np.concatenate((self.t, other.t)),
            np.concatenate((self.x, other.x)),
            np.concatenate((self.y, other.y)),
            np.concatenate((self.s, other.s)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TupleBatch(n={len(self)})"
