"""Data substrate: raw tuples, windows and the synthetic *lausanne-data*.

The paper's evaluation dataset (OpenSense traces from two Lausanne buses,
1 month at 60 s sampling, 176 K raw tuples) is proprietary.  This package
replaces it with a deterministic synthetic equivalent that preserves the
property the paper is about — *geo-temporal skew*: measurements exist only
along bus routes, and only while buses are in service.

Beyond the CO2 headline dataset it provides the pollutant registry and
per-pollutant fields (Section 2.2 lists CO2, CO and particulate matter)
and a quality screen for the error-prone community sensors of [7, 8].
"""

from repro.data.field import DiurnalTrafficCycle, EmissionSource, PollutionField
from repro.data.io import read_tuples_csv, write_tuples_csv
from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
from repro.data.multipollutant import (
    field_for_pollutant,
    generate_all_pollutants,
    generate_pollutant_dataset,
)
from repro.data.pollutants import Pollutant, get_pollutant, registered_pollutants
from repro.data.quality import QualityConfig, QualityReport, screen_window
from repro.data.routes import BusRoute, lausanne_routes
from repro.data.tuples import QueryTuple, RawTuple, TupleBatch
from repro.data.windows import WindowSpec, count_windows, iter_windows, window

__all__ = [
    "DiurnalTrafficCycle",
    "EmissionSource",
    "PollutionField",
    "read_tuples_csv",
    "write_tuples_csv",
    "LausanneConfig",
    "generate_lausanne_dataset",
    "field_for_pollutant",
    "generate_all_pollutants",
    "generate_pollutant_dataset",
    "Pollutant",
    "get_pollutant",
    "registered_pollutants",
    "QualityConfig",
    "QualityReport",
    "screen_window",
    "BusRoute",
    "lausanne_routes",
    "QueryTuple",
    "RawTuple",
    "TupleBatch",
    "WindowSpec",
    "count_windows",
    "iter_windows",
    "window",
]
