"""Filesystem seams the durable tier's crash-safety argument rests on.

Every write-path syscall that a durability claim in this package depends
on — buffered writes, fsync, atomic rename, directory-entry fsync — goes
through the module-level functions here instead of calling :mod:`os`
directly.  That gives the crash-injection harness (``tests/faultfs.py``)
one interposition point for *all* of them: it can count fsync/rename
boundaries across a whole workload, kill the "process" at exactly the
k-th one, or cut a write short to simulate a torn sector, without
monkeypatching half the standard library.

The functions are deliberately trivial; the value is the seam, not the
body.  Production code pays one extra function call per syscall.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import BinaryIO, Union


def write(f: BinaryIO, data: bytes) -> int:
    """Buffered file write — the seam torn-write injection cuts short."""
    return f.write(data)


def fsync(f: BinaryIO) -> None:
    """Flush and fsync an open file — a durability boundary.

    Everything written before a completed ``fsync`` is on stable storage;
    a crash after it can lose nothing up to here.  The crash-injection
    matrix enumerates exactly these boundaries.
    """
    f.flush()
    os.fsync(f.fileno())


def replace(src: Union[str, Path], dst: Union[str, Path]) -> None:
    """Atomic rename — the commit point of every atomic file write."""
    os.replace(src, dst)


def fsync_dir(path: Union[str, Path]) -> None:
    """Best-effort directory-entry fsync (makes a rename itself durable)."""
    try:
        dir_fd = os.open(str(path), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically.

    Temp file in the target's directory, write + flush + fsync, then
    ``os.replace`` over the destination and a best-effort directory
    fsync.  A crash at any point leaves either the previous complete
    file or the new complete file, never a torn hybrid — the temp file
    only becomes visible under ``path`` at the atomic rename.

    The temp file is unlinked in a ``finally`` whenever the rename did
    not commit, so *any* failure between ``mkstemp`` and ``replace``
    (disk full mid-write, a failed fsync, an injected crash) leaves no
    orphan behind.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    committed = False
    try:
        with os.fdopen(fd, "wb") as f:
            write(f, payload)
            fsync(f)
        replace(tmp_name, path)
        committed = True
    finally:
        if not committed:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
    fsync_dir(path.parent)
