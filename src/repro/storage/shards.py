"""Region-sharded storage: one window-partitioned database per region.

The single-node :class:`~repro.storage.engine.Database` owns every tuple;
at platform scale (millions of app users over one city) that one store is
the bottleneck for both ingest and queries.  The :class:`ShardRouter`
splits the stream by *geographic region* — a
:class:`~repro.geo.region.RegionGrid` over the sensed area — so each
shard's database holds only its region's tuples and ingest touches (and
invalidates) exactly one shard per tuple.

Sharding must not change query answers.  The query layer's unit of
eligibility is the *global* count-window ``W_c`` (the first ``h`` tuples
of the stream, the next ``h``, ...), which region-split streams do not
reproduce on their own.  The router therefore records, at every global
window boundary it ingests across, the per-shard row offset — the number
of that shard's tuples among the first ``c * h`` global tuples.  The
slice of shard ``s`` between two recorded offsets is exactly the part of
``W_c`` that shard owns, so the union of :meth:`shard_window` slices over
all shards is exactly the global window's tuple multiset, whatever the
shard count.  That alignment is what lets the sharded query engine
(:mod:`repro.query.sharded`) return answers byte-identical across shard
counts.

Global window-for-time resolution needs no merged stream either: with a
time-sorted global stream, the number of global tuples at or before time
``t`` is the sum of per-shard ``searchsorted`` positions, because routing
preserves per-shard time order.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import window_boundaries_in
from repro.geo.coords import BoundingBox
from repro.geo.region import RefinedRegionGrid, RegionGrid
from repro.storage.engine import Database
from repro.storage.load import ShardLoadStat, ShardLoadTracker, skew_coefficient
from repro.storage.sketch import WindowSketch


class StaleLayoutError(RuntimeError):
    """A snapshot binding pinned one shard layout but the router has
    since rebalanced to another.  Raised only for *unresolved* reads —
    slices pinned before the rebalance stay valid forever (the retired
    layout's arrays are immutable), which is what keeps in-flight plans
    byte-identical across a rebalance."""


class ShardRouter:
    """Routes an append-only tuple stream across per-region databases.

    ``h`` is the *global* count-window size the query layer aligns to;
    each shard's own database is window-partitioned with the same ``h``
    (shard-local windows, used by per-shard servers for cover storage and
    sealed-window caching — deliberately distinct from the global cuts).

    The global stream must be delivered in time order (the append-only
    sensing contract the rest of the system already assumes); per-shard
    streams then stay time-sorted too.
    """

    #: The process-parallel executor's shared-memory export path reads
    #: each shard's rows as one contiguous in-memory prefix; routers
    #: that page sealed windows out (the durable tier) set this False
    #: and execute in-process instead.
    prefix_exportable = True

    def __init__(self, grid: RegionGrid, h: int = 240) -> None:
        if h <= 0:
            raise ValueError("window size h must be positive")
        self.grid = grid
        self.h = h
        self._dbs = [
            Database.for_enviro_meter(partition_h=h) for _ in range(grid.n_regions)
        ]
        self._global_rows = 0
        # _cuts[s][c] = number of shard-s tuples among the first c*h global
        # rows; one entry per *started* global window, starting with the
        # trivial cut at window 0.
        self._cuts: List[List[int]] = [[0] for _ in range(grid.n_regions)]
        # Per-shard global stream positions (gids), appended per ingest and
        # concatenated lazily.  The gid is the partition-invariant identity
        # the exact gather path orders hits by.
        self._gid_parts: List[List[np.ndarray]] = [[] for _ in range(grid.n_regions)]
        self._gid_cache: List[Optional[np.ndarray]] = [None] * grid.n_regions
        # Writer serialisation: one ingest at a time keeps the global row
        # counter, the cut offsets and the gid parts mutually consistent.
        self._lock = threading.RLock()
        self._epoch = 0
        # Per shard: global window c -> epoch of the last ingest that
        # delivered tuples of W_c to that shard.  The stamp the sharded
        # query engine's processor caches key on (sealed windows freeze).
        self._window_epochs: List[Dict[int, int]] = [
            {} for _ in range(grid.n_regions)
        ]
        # Per shard: global window c -> zone-map sketch of exactly the
        # rows counted by _window_epochs[s][c]'s stamp.  Maintained
        # incrementally (O(delta rows) per ingest) under the same lock
        # that advances the stamp, so a sealed window's sketch is
        # immutable and the open window's sketch is re-stamped with
        # every content epoch it grows at.
        self._sketches: List[Dict[int, WindowSketch]] = [
            {} for _ in range(grid.n_regions)
        ]
        # Layout epoch: +1 per split/merge re-cut.  Bindings capture it
        # at construction; a mismatch on an *unresolved* read raises
        # StaleLayoutError instead of silently mixing two layouts.
        self._layout_epoch = 0
        # Per-shard load statistics (ingest rows under this lock, scan
        # observations from executor threads) — the rebalancer's input.
        self.load = ShardLoadTracker(grid.n_regions)

    # -- topology ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.grid.n_regions

    def database(self, s: int) -> Database:
        return self._dbs[s]

    @property
    def databases(self) -> Sequence[Database]:
        return tuple(self._dbs)

    def global_count(self) -> int:
        """Total tuples ingested across all shards."""
        return self._global_rows

    @property
    def epoch(self) -> int:
        """Monotone ingest epoch: +1 per non-empty :meth:`ingest` call
        (and per layout re-cut, which re-stamps the affected slots)."""
        return self._epoch

    @property
    def layout_epoch(self) -> int:
        """Monotone layout epoch: +1 per :meth:`split_shard` /
        :meth:`merge_cell` re-cut.  Unchanged by ordinary ingest."""
        return self._layout_epoch

    def shard_load_stats(self) -> List[ShardLoadStat]:
        """Per-shard load counters (index = shard slot) — ingest rows,
        scan queries/units/seconds and the EWMA recent-load estimate the
        rebalancer ranks shards on."""
        return self.load.snapshot()

    def load_skew(self) -> float:
        """Max/mean skew of per-shard tuple counts (1.0 = balanced)."""
        return skew_coefficient(self.shard_counts())

    def shard_window_epoch(self, s: int, c: int) -> int:
        """Epoch of the last ingest that delivered global-window-``c``
        tuples to shard ``s`` (0 if the slice is empty).  Frozen once the
        global window seals — the content stamp the sharded query engine
        keys its processor caches on.  Read the stamp *before* slicing
        the window: the slice is then at least as fresh as the stamp."""
        return self._window_epochs[s].get(int(c), 0)

    def shard_counts(self) -> List[int]:
        """Per-shard tuple counts (sums to :meth:`global_count`)."""
        return [db.raw_count() for db in self._dbs]

    # -- ingest ------------------------------------------------------------

    def route(self, batch: TupleBatch) -> np.ndarray:
        """Owning shard index per tuple of ``batch`` (no ingestion)."""
        return self.grid.shards_of(batch.x, batch.y)

    def ingest(self, batch: TupleBatch) -> List[int]:
        """Append a batch, routing each tuple to its owning shard.

        Returns the number of tuples delivered per shard.  Order within a
        shard follows global stream order, and the per-shard cut offsets
        for every global window boundary the batch crosses are recorded
        before the counters advance.
        """
        n = len(batch)
        if not n:
            return [0] * self.n_shards
        with self._lock:
            # Sized under the lock: a split/merge re-cut between an
            # unlocked read and routing would widen the slot range.
            delivered = [0] * self.n_shards
            owners = self.route(batch)
            start = self._global_rows
            boundaries = window_boundaries_in(start, n, self.h)
            prior = [db.raw_count() for db in self._dbs]
            gids = np.arange(start, start + n, dtype=np.int64)
            self._epoch += 1
            for s in np.unique(owners):
                s = int(s)
                member = owners == s
                # Gids first, rows second: a lock-free reader that sees a
                # shard row can then always resolve its gid, never the
                # reverse (extra gids past the committed rows are inert).
                self._gid_parts[s].append(gids[member])
                self._gid_cache[s] = None
                sub = batch.select_mask(member)
                delivered[s] = self._dbs[s].ingest_tuples(sub)
                self.load.record_ingest(s, delivered[s])
                wins = gids[member] // self.h
                for c in np.unique(wins):
                    c = int(c)
                    self._window_epochs[s][c] = self._epoch
                    # Widen the window's zone map by exactly the rows
                    # this delivery added to it — the sketch then always
                    # describes the rows the fresh stamp counts.
                    in_c = wins == c
                    self._sketches[s][c] = self._sketches[s].get(
                        c, WindowSketch.EMPTY
                    ).extended(sub.t[in_c], sub.x[in_c], sub.y[in_c], sub.s[in_c])
            if len(boundaries):
                # positions_s[k] = batch-local row of shard s's k-th tuple;
                # the number of shard-s tuples before global boundary b is
                # then a binary search over it — one vectorised call per
                # shard for all boundaries the batch crosses.
                local_b = np.asarray(boundaries, dtype=np.int64) - start
                for s in range(self.n_shards):
                    if not delivered[s]:  # absent from the batch: cuts are flat
                        self._cuts[s].extend([prior[s]] * len(local_b))
                        continue
                    positions = np.flatnonzero(owners == s)
                    cuts = prior[s] + np.searchsorted(positions, local_b)
                    self._cuts[s].extend(int(cut) for cut in cuts)
            self._global_rows += n
        return delivered

    # -- global window alignment -------------------------------------------

    def global_window_count(self) -> int:
        """Number of started global count-windows."""
        return (self._global_rows + self.h - 1) // self.h

    def _window_bounds(self, s: int, c: int, n_rows: int) -> tuple:
        """Shard-local ``(start, stop)`` of global window ``W_c`` in a
        shard column of ``n_rows`` rows (validates ``c``)."""
        if c < 0:
            raise ValueError("window index c must be non-negative")
        if c >= self.global_window_count():
            raise IndexError(
                f"global window {c} (h={self.h}) starts past the stream end"
            )
        cuts = self._cuts[s]
        stop = cuts[c + 1] if c + 1 < len(cuts) else n_rows
        return cuts[c], stop

    def shard_window(self, s: int, c: int) -> TupleBatch:
        """Shard ``s``'s slice of the *global* window ``W_c`` (zero-copy).

        Raises ``IndexError`` when ``c`` is past the last started global
        window, mirroring :func:`repro.data.windows.window`.
        """
        batch = self._dbs[s].raw_tuples()
        start, stop = self._window_bounds(s, c, len(batch))
        return batch.slice(start, stop)

    def shard_windows(self, c: int) -> List[TupleBatch]:
        """Every shard's slice of global window ``W_c`` (index = shard)."""
        return [self.shard_window(s, c) for s in range(self.n_shards)]

    def shard_gids(self, s: int) -> np.ndarray:
        """Global stream positions of shard ``s``'s tuples, in shard order.

        Strictly increasing: routing preserves global order per shard."""
        cached = self._gid_cache[s]
        if cached is None:
            parts = self._gid_parts[s]
            cached = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            self._gid_cache[s] = cached
        return cached

    def shard_window_gids(self, s: int, c: int) -> np.ndarray:
        """Global ids aligned with :meth:`shard_window`'s rows."""
        gids = self.shard_gids(s)
        start, stop = self._window_bounds(s, c, len(gids))
        return gids[start:stop]

    def snapshot_window(self, s: int, c: int):
        """Coherent ``(content stamp, window slice, gid slice)`` triple.

        Taken under the router lock, so a concurrent ingest can never
        tear the triple: the stamp identifies exactly the rows in the
        slices, and the gids align with the window's rows.  O(1) —
        zero-copy slicing only; callers scan outside the lock.  This is
        the read the sharded query engine's epoch-stamped caches key on.
        """
        with self._lock:
            return (
                self.shard_window_epoch(s, c),
                self.shard_window(s, c),
                self.shard_window_gids(s, c),
            )

    def shard_window_sketch(self, s: int, c: int) -> WindowSketch:
        """Zone-map sketch of shard ``s``'s slice of global window ``c``.

        O(1): the sketch is maintained incrementally at ingest.  Sealed
        windows' sketches are immutable; the open window's sketch is
        replaced (sketches themselves are frozen) whenever an ingest
        grows the slice, in the same locked section that advances the
        content stamp.  An empty slice maps to
        :data:`WindowSketch.EMPTY`.
        """
        return self._sketches[s].get(int(c), WindowSketch.EMPTY)

    def frozen_window_sketch(self, s: int, c: int) -> Optional[WindowSketch]:
        """The immutable sketch of a *sealed* global window, else ``None``.

        Once the write head passes ``(c + 1) * h`` rows the window's
        rows — and therefore its sketch — can never change again, so the
        sketch can be handed out without the router lock and without
        materialising the slice.  This is the no-pin path the binding's
        pruning pass prefers: skipping a window costs a dictionary read,
        not a slice resolution (and on the durable tier, not a segment
        fault-in).  Open windows return ``None`` — their sketch must be
        pinned coherently with the slice.
        """
        c = int(c)
        if c < self._global_rows // self.h:
            return self._sketches[s].get(c, WindowSketch.EMPTY)
        return None

    def window_stats(self, c: int) -> List[tuple]:
        """Unlocked per-shard ``(stamp, n_rows, read_epoch)`` estimates
        for global window ``c`` (index = shard), read off the maintained
        sketches in O(shards).  Estimates only — rows may tear under a
        concurrent ingest; they feed display records (pruned-op rows in
        plan explains, the CLI shards table), never pruning decisions.
        ``read_epoch`` stamps each row with the router epoch observed at
        *its own* read, so a display consumer can label rows that went
        stale mid-scan (e.g. a rebalance re-cutting the layout while the
        table was being assembled) instead of silently mixing layouts."""
        c = int(c)
        stats = []
        for s in range(self.n_shards):
            read_epoch = self._epoch
            sketch = self._sketches[s].get(c)
            stats.append(
                (
                    self._window_epochs[s].get(c, 0),
                    sketch.n_rows if sketch is not None else 0,
                    read_epoch,
                )
            )
        return stats

    def snapshot_window_sketch(self, s: int, c: int):
        """Coherent ``(stamp, slice, gids, sketch)`` quadruple.

        Like :meth:`snapshot_window` with the window's zone map read in
        the same locked section, so the sketch describes exactly the
        pinned rows — a pruning decision made from the sketch can never
        disagree with the slice the scan would read.
        """
        with self._lock:
            return (
                self.shard_window_epoch(s, c),
                self.shard_window(s, c),
                self.shard_window_gids(s, c),
                self.shard_window_sketch(s, c),
            )

    def windows_for_times(self, ts) -> np.ndarray:
        """Global window index responsible for each query timestamp.

        Identical to :func:`repro.data.windows.windows_for_times` over the
        merged global stream: the rank of ``t`` in the global time order
        is the sum of its per-shard ranks.
        """
        ts = np.asarray(ts, dtype=np.float64)
        if not self._global_rows:
            raise RuntimeError("router has no data")
        pos = np.zeros(ts.shape, dtype=np.int64)
        for db in self._dbs:
            t_col = db.raw_tuples().t
            if len(t_col):
                pos += np.searchsorted(t_col, ts, side="right")
        # Clamp to the *registered* global windows: under concurrent
        # ingest a shard column can run ahead of the router's row counter
        # for an instant, and a window index past the registered stream
        # end would fault every window lookup downstream.
        limit = max(self.global_window_count() - 1, 0)
        return np.minimum(np.maximum(pos - 1, 0) // self.h, limit)

    def window_for_time(self, t: float) -> int:
        return int(self.windows_for_times((t,))[0])

    def cuts(self, s: int) -> List[int]:
        """Copy of shard ``s``'s recorded global-boundary cut offsets."""
        return list(self._cuts[s])

    # -- adaptive layout: split / merge re-cuts ----------------------------
    #
    # A re-cut is an epoch-bumped transaction under the router lock:
    # the affected shard's rows are re-routed into the new layout's
    # slots, every slot's cut offsets are recomputed from its gids
    # (cut[c] = #gids < c*h, the same definition ingest records
    # incrementally), per-(slot, window) sketches are rebuilt exactly,
    # and every touched window is re-stamped at a fresh content epoch so
    # no processor-cache entry built on the old layout can ever be
    # served again (stamp-equality serving + monotone stamps).  The old
    # layout's per-shard state lists are never mutated in place — the
    # new lists are built aside and published with single reference
    # assignments — so a reader pinned on the old layout (a binding's
    # memoised slices, an unlocked windows_for_times iteration) keeps a
    # coherent view of the retired layout forever.

    def _refined_grid(self) -> RefinedRegionGrid:
        grid = self.grid
        if isinstance(grid, RefinedRegionGrid):
            return grid
        return RefinedRegionGrid.refine(grid)

    def _shard_column(self, s: int):
        """Coherent (batch, gids) of shard ``s``'s full column (locked)."""
        batch = self._dbs[s].raw_tuples()
        return batch, self.shard_gids(s)[: len(batch)]

    def _install_layout(self, new_grid: RefinedRegionGrid, rebuilt, cleared) -> None:
        """Publish a re-cut: ``rebuilt`` maps slot -> (batch, gids) in
        gid order; ``cleared`` slots become empty holes.  Caller holds
        the lock."""
        n_old = len(self._dbs)
        n_new = new_grid.n_regions
        m = len(self._cuts[0])
        self._epoch += 1
        self._layout_epoch += 1
        epoch = self._epoch
        dbs = list(self._dbs)
        cuts = list(self._cuts)
        gid_parts = list(self._gid_parts)
        gid_cache = list(self._gid_cache)
        wepochs = list(self._window_epochs)
        sketches = list(self._sketches)
        for lists in (dbs, cuts, gid_parts, gid_cache, wepochs, sketches):
            lists.extend([None] * (n_new - n_old))
        touched = set(cleared) | set(rebuilt) | set(range(n_old, n_new))
        for slot in touched:
            dbs[slot] = Database.for_enviro_meter(partition_h=self.h)
            cuts[slot] = [0] * m
            gid_parts[slot] = []
            gid_cache[slot] = None
            wepochs[slot] = {}
            sketches[slot] = {}
        boundaries = np.arange(m, dtype=np.int64) * self.h
        for slot, (batch, gids) in rebuilt.items():
            if len(batch):
                dbs[slot].ingest_tuples(batch)
                gid_parts[slot] = [gids]
                gid_cache[slot] = gids
            cuts[slot] = [int(v) for v in np.searchsorted(gids, boundaries)]
            wins = gids // self.h
            for c in np.unique(wins):
                c = int(c)
                in_c = wins == c
                wepochs[slot][c] = epoch
                sketches[slot][c] = WindowSketch.EMPTY.extended(
                    batch.t[in_c], batch.x[in_c], batch.y[in_c], batch.s[in_c]
                )
        self._dbs = dbs
        self._cuts = cuts
        self._gid_parts = gid_parts
        self._gid_cache = gid_cache
        self._window_epochs = wepochs
        self._sketches = sketches
        self.grid = new_grid
        self.load.resize(n_new)
        for slot in touched:
            self.load.reset_shard(slot)

    def split_shard(self, s: int, sx: int = 2, sy: int = 2) -> List[int]:
        """Split shard ``s``'s grid cell into ``sx x sy`` sub-tiles.

        Returns the new layout's slot ids for the cell (the first one is
        ``s`` itself — unaffected shards never renumber).  The global
        row multiset, gids, and window alignment are unchanged, so
        answers stay byte-identical at the new layout; only the
        partitioning of the hot cell's rows across slots moves.
        """
        with self._lock:
            grid = self._refined_grid()
            cell = grid.cell_of_shard(s)
            new_grid = grid.split_cell(cell, sx, sy)
            new_ids = list(new_grid.cell_shards[cell])
            batch, gids = self._shard_column(s)
            owners = new_grid.shards_of(batch.x, batch.y)
            if len(batch) and not np.isin(owners, new_ids).all():
                raise RuntimeError(
                    f"split of shard {s} re-routed rows outside cell {cell}"
                )
            rebuilt = {}
            for t in new_ids:
                member = owners == t
                rebuilt[t] = (batch.select_mask(member), gids[member])
            parent_load = self.load.loads()[s]
            self._install_layout(new_grid, rebuilt, cleared=())
            # Carry the parent's EWMA load over, split by row share, so
            # the rebalancer sees the (still-hot) cell as hot rather
            # than freshly cold — without this a split would immediately
            # qualify for re-merge.
            total = max(len(batch), 1)
            for t in new_ids:
                self.load.seed_load(t, parent_load * len(rebuilt[t][1]) / total)
            return new_ids

    def merge_cell(self, cell: int) -> int:
        """Re-merge a split cell's sub-tiles into one shard (the lowest
        tile id); the other tile ids become empty hole slots.  Returns
        the surviving shard id."""
        with self._lock:
            grid = self.grid
            if not isinstance(grid, RefinedRegionGrid):
                raise ValueError("grid has no split cells to merge")
            old_ids = list(grid.cell_shards[cell])
            new_grid = grid.merge_cell(cell)
            keep = new_grid.cell_shards[cell][0]
            parts = [self._shard_column(t) for t in old_ids]
            gids = np.concatenate([g for _, g in parts]) if parts else np.empty(
                0, dtype=np.int64
            )
            order = np.argsort(gids)
            merged = TupleBatch(
                np.concatenate([b.t for b, _ in parts])[order],
                np.concatenate([b.x for b, _ in parts])[order],
                np.concatenate([b.y for b, _ in parts])[order],
                np.concatenate([b.s for b, _ in parts])[order],
            )
            loads = self.load.loads()
            tile_load = sum(loads[t] for t in old_ids if t < len(loads))
            self._install_layout(
                new_grid,
                {keep: (merged, gids[order])},
                cleared=[t for t in old_ids if t != keep],
            )
            # The survivor inherits the tiles' combined recent load.
            self.load.seed_load(keep, tile_load)
            return keep


def single_shard_router(
    h: int = 240, bounds: Optional[BoundingBox] = None
) -> ShardRouter:
    """A 1-shard router — the degenerate configuration every multi-shard
    answer must be byte-identical to.  ``bounds`` defaults to a unit box;
    with one cell, ownership is total regardless of the box."""
    box = bounds or BoundingBox(0.0, 0.0, 1.0, 1.0)
    return ShardRouter(RegionGrid(box, nx=1, ny=1), h=h)
