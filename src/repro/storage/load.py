"""Per-shard load statistics for adaptive shard management.

:class:`ShardLoadTracker` generalises the planner-feedback EWMA
machinery (:class:`~repro.query.pipeline.planner.PlannerFeedback`) from
per-method calibration to per-shard load accounting: every ingest
records the rows it delivered to a shard, every executed scan op records
the queries it answered, the scan units it evaluated and the wall time
the executor's timed region observed.  Cumulative counters feed
observability (the CLI shards table, the benchmark histograms); the
exponentially-weighted recent-load estimate feeds the
:class:`~repro.storage.rebalance.ShardRebalancer`'s split/merge/replica
decisions, so one historical burst cannot pin a layout forever.

The tracker is owned by the shard router and mutated under the router's
ingest lock (ingest records) or its own lock (scan records arrive from
executor pool threads); snapshots are taken under the lock, so a
rebalance decision never reads a torn counter row.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ShardLoadStat:
    """One shard's cumulative and recent load counters.

    ``load`` is the EWMA-decayed combination of recent ingest rows and
    scan units — the single axis rebalancing decisions rank shards on.
    Retired hole slots report all-zero rows and decay to zero load.
    """

    shard: int
    ingest_rows: int
    scan_queries: int
    scan_units: float
    scan_seconds: float
    load: float


class ShardLoadTracker:
    """EWMA-decayed per-shard load accounting.

    ``alpha`` is the EWMA weight of a new observation (the same
    smoothing discipline as planner feedback): ``load`` converges toward
    the recent per-observation work and forgets cold history, which is
    what lets a merged-back suburb shard's load fall below the merge
    threshold after the downtown burst moves on.
    """

    def __init__(self, n_shards: int, alpha: float = 0.3) -> None:
        if n_shards < 1:
            raise ValueError("tracker needs at least one shard")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ingest_rows = [0] * n_shards
        self._scan_queries = [0] * n_shards
        self._scan_units = [0.0] * n_shards
        self._scan_seconds = [0.0] * n_shards
        self._load = [0.0] * n_shards

    @property
    def n_shards(self) -> int:
        return len(self._load)

    def resize(self, n_shards: int) -> None:
        """Grow the slot space (a split appended new shard ids).  Never
        shrinks — retired holes keep their slot and decay instead."""
        with self._lock:
            grow = n_shards - len(self._load)
            if grow > 0:
                self._ingest_rows += [0] * grow
                self._scan_queries += [0] * grow
                self._scan_units += [0.0] * grow
                self._scan_seconds += [0.0] * grow
                self._load += [0.0] * grow

    def reset_shard(self, s: int) -> None:
        """Zero one slot's counters — a rebalance re-cut the slot's rows,
        so its history describes a layout that no longer exists."""
        with self._lock:
            self._ingest_rows[s] = 0
            self._scan_queries[s] = 0
            self._scan_units[s] = 0.0
            self._scan_seconds[s] = 0.0
            self._load[s] = 0.0

    def seed_load(self, s: int, load: float) -> None:
        """Set one slot's recent-load estimate directly.

        A re-cut carries the retired layout's EWMA over to its successor
        slots (a split hands each tile its row-share of the parent's
        load, a merge hands the survivor the tile sum) so a just-split
        hot cell does not instantly look cold enough to re-merge."""
        with self._lock:
            self._load[s] = max(0.0, float(load))

    def record_ingest(self, s: int, rows: int) -> None:
        if rows <= 0:
            return
        with self._lock:
            self._ingest_rows[s] += int(rows)
            self._load[s] += self.alpha * float(rows)

    def record_scan(
        self, s: int, n_queries: int, units: float, seconds: Optional[float]
    ) -> None:
        """One executed scan op against shard ``s``: ``units`` is the
        evaluated scan-unit load (the planner's cost axis), ``seconds``
        the executor's observed wall time (None on the process path,
        which does not time per-op)."""
        with self._lock:
            self._scan_queries[s] += int(n_queries)
            self._scan_units[s] += float(units)
            if seconds is not None:
                self._scan_seconds[s] += float(seconds)
            self._load[s] += self.alpha * float(units)

    def decay(self) -> None:
        """One decay tick: recent load forgets ``alpha`` of itself.  The
        rebalancer calls this once per decision round, so load reflects
        the recent window of work rather than all of history."""
        with self._lock:
            keep = 1.0 - self.alpha
            for s in range(len(self._load)):
                self._load[s] *= keep

    def snapshot(self) -> List[ShardLoadStat]:
        """Coherent per-shard stat rows (index = shard slot)."""
        with self._lock:
            return [
                ShardLoadStat(
                    shard=s,
                    ingest_rows=self._ingest_rows[s],
                    scan_queries=self._scan_queries[s],
                    scan_units=self._scan_units[s],
                    scan_seconds=self._scan_seconds[s],
                    load=self._load[s],
                )
                for s in range(len(self._load))
            ]

    def loads(self) -> List[float]:
        """Recent per-shard load values (the rebalancer's ranking axis)."""
        with self._lock:
            return list(self._load)


def skew_coefficient(values) -> float:
    """Max/mean skew over the non-trivial entries of ``values``.

    1.0 means perfectly balanced; ``k`` means the hottest shard carries
    ``k``x the mean.  Zero-only (or empty) input reports 1.0 — an idle
    layout is not skewed.
    """
    vals = [float(v) for v in values]
    total = sum(vals)
    if not vals or total <= 0.0:
        return 1.0
    return max(vals) / (total / len(vals))
