"""Shared-memory export of sealed columnar shard prefixes.

The process-parallel executor (:mod:`repro.query.pipeline.parallel`)
needs worker processes to read a shard's raw-tuple columns without
pickling megabytes of float64 per request.  This module gives each shard
one :class:`multiprocessing.shared_memory.SharedMemory` block holding a
fixed *prefix* of its stream — the four raw columns ``t, x, y, s`` plus
the aligned global stream positions (gids) the exact gather orders hits
by.

Why a prefix export is sound: the storage layer is append-only and a
shard's committed prefix is immutable (buffer reallocation in
:class:`~repro.storage.table._NumericColumn` copies the prefix before the
swap, and rows never mutate in place).  Copying the first ``n`` rows into
a shared block therefore captures them forever — any plan op whose bound
slice lies inside ``[0, n)`` can be answered from the block, bit-for-bit
equal to reading the live buffers.  When the stream grows past the
export, the parent publishes a *new* block and retires the old one; a
block is never resized or rewritten after :func:`export_shard` returns.

Lifecycle (documented in ``docs/architecture.md``):

* the parent creates a block per shard on demand and is the only writer;
* workers attach read-only by name (one cached attachment per name);
  mp-spawned workers share the parent's resource-tracker daemon, so the
  attach-time re-registration is a harmless set no-op and a killed
  worker can never unlink memory the parent still serves from (see
  :class:`AttachedShard` for the non-child-process case);
* the parent unlinks a block when it is retired (superseded by a larger
  export) or on shutdown.  Workers already attached keep their mapping
  alive (POSIX shm survives unlink until the last unmap); a request
  racing the retirement may fail to attach, which the executor treats
  like any worker failure: fall back to in-process execution.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.data.tuples import TupleBatch

_FLOAT_COLUMNS = ("t", "x", "y", "s")
_ITEMSIZE = 8  # float64 and int64 columns only


def _block_size(n_rows: int) -> int:
    # 4 float64 columns + 1 int64 gid column; shm blocks cannot be empty.
    return max(1, n_rows * _ITEMSIZE * (len(_FLOAT_COLUMNS) + 1))


@dataclass(frozen=True)
class ShardExportDescriptor:
    """Picklable handle a worker needs to attach one shard export."""

    shm_name: str
    n_rows: int


class ShardExport:
    """Parent-side owner of one shard's shared-memory prefix block."""

    def __init__(self, batch: TupleBatch, gids: np.ndarray) -> None:
        n = len(batch)
        if len(gids) < n:
            raise ValueError("gids must cover every exported row")
        self.n_rows = n
        name = f"emshm_{secrets.token_hex(8)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=_block_size(n), name=name
        )
        if n:
            for k, col in enumerate(_FLOAT_COLUMNS):
                dst = np.ndarray(
                    n, dtype="<f8", buffer=self._shm.buf, offset=k * n * _ITEMSIZE
                )
                dst[:] = getattr(batch, col)[:n]
            dst = np.ndarray(
                n,
                dtype="<i8",
                buffer=self._shm.buf,
                offset=len(_FLOAT_COLUMNS) * n * _ITEMSIZE,
            )
            dst[:] = gids[:n]
            del dst

    @property
    def name(self) -> str:
        return self._shm.name

    def descriptor(self) -> ShardExportDescriptor:
        return ShardExportDescriptor(self._shm.name, self.n_rows)

    def destroy(self) -> None:
        """Unlink the block (idempotent).  Attached workers keep their
        mapping; new attaches fail, which callers treat as a worker
        failure and fall back."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the buffer
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def export_shard(batch: TupleBatch, gids: np.ndarray) -> ShardExport:
    """Copy the first ``len(batch)`` rows of a shard into a new block."""
    return ShardExport(batch, gids)


class AttachedShard:
    """Worker-side read-only view of one exported shard prefix.

    ``batch``/``gids`` are zero-copy numpy views straight into the shared
    block; slicing them (``batch.slice(start, stop)``) resolves a plan
    op's bound window without any further copying.
    """

    def __init__(
        self, descriptor: ShardExportDescriptor, untrack: bool = False
    ) -> None:
        self._shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        # On Python < 3.13 attaching re-registers the block with the
        # resource tracker.  Workers spawned by multiprocessing *share*
        # the parent's tracker daemon, where registrations live in a set:
        # the duplicate register is a no-op, and unregistering here would
        # strip the parent's own registration — so by default we leave the
        # tracker alone.  ``untrack=True`` is for attachments from
        # processes with their *own* tracker (not mp-spawned children),
        # where the exit-time cleanup would otherwise unlink blocks the
        # exporter still serves.
        if untrack:
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        n = descriptor.n_rows
        self.n_rows = n
        if n:
            cols = [
                np.ndarray(
                    n, dtype="<f8", buffer=self._shm.buf, offset=k * n * _ITEMSIZE
                )
                for k in range(len(_FLOAT_COLUMNS))
            ]
            gids = np.ndarray(
                n,
                dtype="<i8",
                buffer=self._shm.buf,
                offset=len(_FLOAT_COLUMNS) * n * _ITEMSIZE,
            )
        else:
            cols = [np.empty(0, dtype="<f8") for _ in _FLOAT_COLUMNS]
            gids = np.empty(0, dtype="<i8")
        gids.flags.writeable = False
        self.batch = TupleBatch(*cols)
        self.gids = gids

    def close(self) -> None:
        """Release the mapping (best-effort: live numpy views pin the
        buffer until they are dropped; process exit reclaims either way)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still alive
            pass


def attach_shard(
    descriptor: ShardExportDescriptor, untrack: bool = False
) -> AttachedShard:
    """Attach to a block published by :func:`export_shard`."""
    return AttachedShard(descriptor, untrack=untrack)


class ShardExportRegistry:
    """Parent-side registry: the current export per shard, grown on demand.

    ``ensure(s, needed_rows, read_prefix)`` returns a descriptor whose
    block covers at least ``needed_rows`` rows of shard ``s``, creating or
    replacing the export from ``read_prefix()`` (a coherent
    ``(batch, gids)`` read of the shard's committed prefix) when the
    current one is too short.  Retired blocks are unlinked immediately —
    see the module docstring for why that is safe.

    ``layout`` is the router's shard-layout epoch: within one layout a
    shard's prefix is append-only, so the length test alone decides
    reuse — but a split/merge re-cut *replaces* the shard's rows, so an
    export from an older layout is retired even when it is long enough.
    """

    def __init__(self) -> None:
        self._exports: dict[int, ShardExport] = {}
        self._layouts: dict[int, int] = {}

    def current(self, s: int) -> Optional[ShardExport]:
        return self._exports.get(s)

    def ensure(
        self, s: int, needed_rows: int, read_prefix, layout: int = 0
    ) -> ShardExportDescriptor:
        export = self._exports.get(s)
        if (
            export is None
            or export.n_rows < needed_rows
            or self._layouts.get(s, 0) != layout
        ):
            batch, gids = read_prefix()
            if len(batch) < needed_rows:
                raise RuntimeError(
                    f"shard {s}: prefix read returned {len(batch)} rows, "
                    f"plan needs {needed_rows}"
                )
            replacement = export_shard(batch, gids)
            if export is not None:
                export.destroy()
            self._exports[s] = export = replacement
            self._layouts[s] = layout
        return export.descriptor()

    def close(self) -> None:
        """Unlink every live export (idempotent)."""
        for export in self._exports.values():
            export.destroy()
        self._exports.clear()
        self._layouts.clear()
