"""Per-(shard, window) zone-map sketches for plan-time scatter pruning.

A :class:`WindowSketch` is the classic zone map / small materialized
aggregate of one bound window slice: row count, spatial bounding box,
time range and value range.  The sharded query layer consults it at plan
build time to drop ``(shard, window)`` scan ops whose bounding volume
provably cannot intersect a disk query — the fan-out then costs
O(relevant shards) instead of O(shards x windows).

Correctness contract (what makes pruning *superset-safe*): a sketch
always covers — never under-covers — the rows of the slice it stamps.
Every tuple of the slice lies inside the sketch's bounding volume, so
"sketch cannot reach the disk" implies "no tuple of the slice is within
radius", which implies the pruned scan would have contributed zero hits.
The exact merge (:func:`repro.query.pipeline.gather.merge_hit_partials`)
orders hits canonically by global stream position, so dropping
provably-empty partials is byte-invisible.

Sketches are immutable (frozen dataclasses).  Growing a slice produces a
*new* sketch via :meth:`extended`; bounds only ever widen, so a sketch
that is fresher than the slice a reader pinned is still superset-safe —
though the router hands both out under one lock so they are in fact
exactly coherent (see :meth:`repro.storage.shards.ShardRouter.snapshot_window_sketch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.data.tuples import TupleBatch

__all__ = ["WindowSketch"]


@dataclass(frozen=True)
class WindowSketch:
    """Zone map of one window slice: count, bbox, time and value ranges.

    An empty slice is represented by :data:`WindowSketch.EMPTY`
    (``n_rows == 0`` with inverted infinite bounds), which overlaps
    nothing by construction.
    """

    n_rows: int
    min_x: float
    max_x: float
    min_y: float
    max_y: float
    min_t: float
    max_t: float
    min_s: float
    max_s: float

    EMPTY: ClassVar["WindowSketch"]  # assigned after the class body

    @property
    def is_empty(self) -> bool:
        return self.n_rows == 0

    @classmethod
    def of(cls, batch: TupleBatch) -> "WindowSketch":
        """The exact sketch of a pinned slice (O(rows), vectorised)."""
        if not len(batch):
            return cls.EMPTY
        return cls(
            n_rows=len(batch),
            min_x=float(batch.x.min()),
            max_x=float(batch.x.max()),
            min_y=float(batch.y.min()),
            max_y=float(batch.y.max()),
            min_t=float(batch.t.min()),
            max_t=float(batch.t.max()),
            min_s=float(batch.s.min()),
            max_s=float(batch.s.max()),
        )

    def extended(
        self, t: np.ndarray, x: np.ndarray, y: np.ndarray, s: np.ndarray
    ) -> "WindowSketch":
        """A new sketch additionally covering the given rows.

        This is the incremental-ingest path: O(delta rows), and because
        bounds only widen, the result covers every row the old sketch
        covered.  Empty deltas return ``self`` unchanged.
        """
        if not len(t):
            return self
        return WindowSketch(
            n_rows=self.n_rows + len(t),
            min_x=min(self.min_x, float(x.min())),
            max_x=max(self.max_x, float(x.max())),
            min_y=min(self.min_y, float(y.min())),
            max_y=max(self.max_y, float(y.max())),
            min_t=min(self.min_t, float(t.min())),
            max_t=max(self.max_t, float(t.max())),
            min_s=min(self.min_s, float(s.min())),
            max_s=max(self.max_s, float(s.max())),
        )

    def merge(self, other: "WindowSketch") -> "WindowSketch":
        """Union of two sketches (covers both slices)."""
        if other.is_empty:
            return self
        if self.is_empty:
            return other
        return WindowSketch(
            n_rows=self.n_rows + other.n_rows,
            min_x=min(self.min_x, other.min_x),
            max_x=max(self.max_x, other.max_x),
            min_y=min(self.min_y, other.min_y),
            max_y=max(self.max_y, other.max_y),
            min_t=min(self.min_t, other.min_t),
            max_t=max(self.max_t, other.max_t),
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )

    def disk_overlaps(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> np.ndarray:
        """Per-query bool: can a radius-``radius`` disk at ``(x, y)``
        contain any covered tuple?

        Tests the clamped distance from each query point to the bounding
        box against the radius with the *same* ``d^2 <= r^2`` comparison
        the naive scan uses (:func:`repro.query.pipeline.gather.scan_hits`).
        For a tuple sitting exactly on the bbox edge at exactly distance
        ``radius``, the clamped coordinate deltas are bitwise negations
        of the scan's, so squaring gives the identical float and the
        boundary tuple is kept — pruning can never drop a hit the scan
        would have found (IEEE multiplication and addition are monotone
        on non-negative operands, so the bbox lower bound survives
        rounding).
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if self.is_empty:
            return np.zeros(xs.shape, dtype=bool)
        dx = np.maximum(np.maximum(self.min_x - xs, xs - self.max_x), 0.0)
        dy = np.maximum(np.maximum(self.min_y - ys, ys - self.max_y), 0.0)
        return dx * dx + dy * dy <= radius * radius


# The canonical empty sketch: inverted infinite bounds, overlaps nothing.
WindowSketch.EMPTY = WindowSketch(
    n_rows=0,
    min_x=np.inf, max_x=-np.inf,
    min_y=np.inf, max_y=-np.inf,
    min_t=np.inf, max_t=-np.inf,
    min_s=np.inf, max_s=-np.inf,
)
