"""Append-only write-ahead log for the open (unsealed) stream tail.

Sealed windows live in immutable segment files (:mod:`repro.storage.segments`);
everything past the last sealed boundary exists only in memory.  The WAL
closes that durability gap: every ingest batch is appended — as one
checksummed record of the *global* (pre-routing) batch — and fsynced
*before* the in-memory state changes, so a crash at any instant loses at
most the batch whose append had not yet returned.

Record layout (little-endian)::

    u32  magic        "WAL1"
    u64  start_row    global stream position of the record's first tuple
    u32  n_rows
    u32  crc32        of the payload bytes
    payload           t, x, y, s as n_rows raw <f8 arrays, concatenated

Replay semantics (:func:`replay_wal`): records are read sequentially and
validated (magic, CRC, monotone contiguous ``start_row``); the first
invalid or incomplete record ends the replay — everything before it is
the durable prefix, everything from it on is a torn tail from a crash
mid-append and is discarded.  Logging the *global* batch (rather than
per-shard slices) makes replay deterministic end-to-end: recovered rows
are re-ingested through the normal routing path, which reconstructs
per-shard order, window cuts, gids and sketches bit-for-bit.

After a seal makes rows durable in segments, :meth:`WriteAheadLog.checkpoint`
atomically replaces the log with a single record holding only the still-
unsealed tail, so the WAL stays O(open window), not O(stream).  Replay
tolerates overlap between segments and WAL records (a crash between the
manifest update and the checkpoint): records carry absolute start rows,
so the recoverer skips any prefix already covered by sealed segments.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.data.tuples import TupleBatch
from repro.storage import fsio

_MAGIC = 0x314C4157  # b"WAL1" read as <u32
_HEADER = struct.Struct("<IQII")  # magic, start_row, n_rows, payload crc32


def _payload(batch: TupleBatch) -> bytes:
    return b"".join(
        np.ascontiguousarray(col, dtype="<f8").tobytes()
        for col in (batch.t, batch.x, batch.y, batch.s)
    )


def _record(start_row: int, batch: TupleBatch) -> bytes:
    payload = _payload(batch)
    header = _HEADER.pack(_MAGIC, start_row, len(batch), zlib.crc32(payload))
    return header + payload


class WriteAheadLog:
    """One append-only log file; every append is durable when it returns.

    ``sync=False`` drops the per-append fsync (crash durability then
    degrades to the OS page cache) — benchmark use only.
    """

    def __init__(self, path: Union[str, Path], sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self._f = open(self.path, "ab")
        self.appends = 0
        self.checkpoints = 0

    def append(self, start_row: int, batch: TupleBatch) -> None:
        """Durably append one ingest batch starting at ``start_row``."""
        if self._f is None:
            raise ValueError("write-ahead log is closed")
        fsio.write(self._f, _record(start_row, batch))
        if self.sync:
            fsio.fsync(self._f)
        self.appends += 1

    def checkpoint(self, start_row: int, tail: TupleBatch) -> None:
        """Atomically shrink the log to just the unsealed tail.

        Writes a fresh log holding one record (``tail`` at
        ``start_row``; an empty tail yields an empty log) to a temp file
        and renames it over the live log, then reopens for appending.
        A crash at any point leaves either the old log (a superset —
        replay skips rows already sealed) or the new one, never a torn
        log.
        """
        if self._f is None:
            raise ValueError("write-ahead log is closed")
        payload = _record(start_row, tail) if len(tail) else b""
        self._f.close()
        self._f = None
        fsio.atomic_write_bytes(self.path, payload)
        self._f = open(self.path, "ab")
        self.checkpoints += 1

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class WalReplay:
    """Outcome of scanning a log: the valid records and tail diagnosis."""

    records: Tuple[Tuple[int, TupleBatch], ...]  # (start_row, batch)
    valid_bytes: int  # length of the valid prefix
    torn: bool  # bytes existed past the valid prefix (discarded)

    @property
    def rows(self) -> int:
        return sum(len(batch) for _, batch in self.records)


def replay_wal(path: Union[str, Path]) -> WalReplay:
    """Scan a log, returning every record of the valid prefix.

    Stops at the first record that is incomplete, fails its CRC, has a
    bad magic, or jumps backwards past its predecessor's coverage in a
    non-contiguous way (``start_row`` beyond the previous record's end).
    A missing file replays as empty.
    """
    path = Path(path)
    if not path.exists():
        return WalReplay((), 0, False)
    data = path.read_bytes()
    records: List[Tuple[int, TupleBatch]] = []
    offset = 0
    next_expected: int | None = None
    while True:
        if offset + _HEADER.size > len(data):
            break
        magic, start_row, n_rows, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            break
        body_len = 4 * 8 * n_rows
        end = offset + _HEADER.size + body_len
        if end > len(data):
            break
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            break
        if next_expected is not None and start_row > next_expected:
            # A gap means lost records — nothing after it can be trusted.
            break
        cols = [
            np.frombuffer(payload, dtype="<f8", count=n_rows, offset=i * 8 * n_rows)
            for i in range(4)
        ]
        records.append((int(start_row), TupleBatch(*cols)))
        next_expected = int(start_row) + n_rows
        offset = end
    return WalReplay(tuple(records), offset, torn=offset < len(data))
