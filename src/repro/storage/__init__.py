"""Embedded storage engine.

The EnviroMeter architecture (Figure 1) stores sensed data in a database
with two tables: ``raw_tuples`` (the sensed measurements) and
``model_cover`` (the serialized models per window).  This package is that
database: an embedded, append-only, columnar store with typed schemas,
window-partitioned zero-copy scans, and binary persistence — no external
DB dependency.  See ``README.md`` in this package for the partitioned
layout and the sealed-window immutability contract.
"""

from repro.storage.engine import Database
from repro.storage.persist import load_database, save_database
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.shards import ShardRouter, single_shard_router
from repro.storage.table import Table
from repro.storage.tiered import TieredShardRouter

__all__ = [
    "Database",
    "ShardRouter",
    "TieredShardRouter",
    "single_shard_router",
    "load_database",
    "save_database",
    "Column",
    "ColumnType",
    "Schema",
    "Table",
]
