"""The embedded database: a named collection of tables plus the two
EnviroMeter-specific accessors (``raw_tuples`` and ``model_cover``).

The server (:mod:`repro.server`) owns one :class:`Database`; the query
processors read tuple windows out of it and the cover builder writes
serialized covers back into it, mirroring Figure 1 of the paper.

The ``raw_tuples`` table is *window-partitioned*: with a ``partition_h``
configured, the stream is split into count-based windows ``W_c`` of
``partition_h`` tuples.  Windows behind the write head are *sealed* —
append-only storage guarantees their rows can never change — and the
database caches one immutable zero-copy :class:`TupleBatch` view per
sealed window, so repeated window reads cost a dict lookup rather than a
re-slice (and never a copy).  ``model_cover`` writes maintain a
per-window latest-cover index, making :meth:`cover_blob_for_window` an
O(1) point lookup instead of a full column scan.

Concurrency: writers (``ingest_tuples``, cover stores) serialise on the
database lock; readers take an **epoch-stamped snapshot**
(:meth:`Database.snapshot`) — an immutable pinned prefix of the stream
plus the epochs identifying each window's content — and then work
entirely off the snapshot, so queries never see torn appends and two
reads of the same snapshot always agree.  The epoch advances once per
non-empty ingest; a window's *content epoch* (:meth:`window_epoch`) is
the epoch of the last ingest that landed tuples in it, which is what the
serving layer's caches key on: sealed windows can never gain tuples, so
their stamps are frozen forever, while the open tail window's stamp
advances with every batch that touches it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import (
    WindowSlices,
    sealed_window_count,
    touched_windows,
    window,
    windows_for_times,
)
from repro.storage.schema import MODEL_COVER_SCHEMA, RAW_TUPLES_SCHEMA, Schema
from repro.storage.table import Table


@dataclass(frozen=True)
class StorageSnapshot:
    """An immutable, epoch-stamped view of a database's tuple stream.

    ``batch`` is a zero-copy prefix of the stream pinned at capture time
    (appends land past it, so its contents never change); ``epoch`` is
    the database epoch at capture.  :meth:`window_epoch` returns the
    content stamp of any window *as of this snapshot*: for windows sealed
    inside the snapshot the live per-window epochs are frozen and shared,
    while the open tail window's stamp was recorded at capture so later
    ingest cannot leak into it.
    """

    batch: TupleBatch
    epoch: int
    h: Optional[int]
    _window_epochs: Mapping[int, int] = field(default_factory=dict, repr=False)
    _tail_c: int = -1
    _tail_epoch: int = 0

    def __len__(self) -> int:
        return len(self.batch)

    def window_epoch(self, c: int) -> int:
        """Content stamp of window ``c`` at this snapshot (0 = no data).

        Two snapshots reporting the same stamp for ``c`` hold exactly the
        same window-``c`` tuples, so any processor or cover built for one
        is byte-for-byte valid for the other.
        """
        if self.h is None:
            return self.epoch
        if c == self._tail_c:
            return self._tail_epoch
        if 0 <= c < len(self.batch) // self.h:
            return self._window_epochs.get(c, 0)
        return 0

    def window(self, c: int) -> TupleBatch:
        """Window ``W_c``'s tuples as of this snapshot (zero-copy)."""
        if self.h is None:
            raise RuntimeError("snapshot has no window partitioning")
        return window(self.batch, c, self.h)

    def windows_for_times(self, ts) -> np.ndarray:
        """Window index per query timestamp, against the pinned stream."""
        if self.h is None:
            raise RuntimeError("snapshot has no window partitioning")
        if not len(self.batch):
            raise RuntimeError("snapshot holds no data")
        return windows_for_times(self.batch.t, ts, self.h)


class Database:
    """An embedded database instance.

    ``partition_h`` is the count-based window size used to partition the
    ``raw_tuples`` table (``None`` for databases that don't store a tuple
    stream).
    """

    def __init__(self, partition_h: Optional[int] = None) -> None:
        if partition_h is not None and partition_h <= 0:
            raise ValueError("partition_h must be positive")
        self._tables: Dict[str, Table] = {}
        self._partition_h = partition_h
        # window_c -> row id of the *newest* cover stored for that window.
        self._cover_index: Dict[int, int] = {}
        # window c -> cached immutable zero-copy view of the sealed window.
        self._sealed_windows: Dict[int, TupleBatch] = {}
        self._raw_cache: Optional[TupleBatch] = None
        self._last_touched: range = range(0)
        # Writer serialisation + snapshot-cache guard.  Reentrant so the
        # ingest path can refresh caches while holding it.
        self._lock = threading.RLock()
        self._epoch = 0
        # window c -> epoch of the last ingest that landed tuples in it.
        self._window_epochs: Dict[int, int] = {}

    # -- generic table management -------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple:
        return tuple(sorted(self._tables))

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]
        if name == "model_cover":
            self._cover_index.clear()
        elif name == "raw_tuples":
            self._sealed_windows.clear()
            self._raw_cache = None
            self._last_touched = range(0)

    # -- EnviroMeter-specific schema ------------------------------------------

    @classmethod
    def for_enviro_meter(cls, partition_h: int = 240) -> "Database":
        """Database pre-created with the Figure 1 tables, with the raw
        tuple stream partitioned into windows of ``partition_h`` tuples."""
        db = cls(partition_h=partition_h)
        db.create_table("raw_tuples", RAW_TUPLES_SCHEMA)
        db.create_table("model_cover", MODEL_COVER_SCHEMA)
        return db

    @property
    def partition_h(self) -> Optional[int]:
        return self._partition_h

    def set_partition_h(self, partition_h: int) -> None:
        """Adopt a window partitioning on an unpartitioned database.

        Only allowed while no partitioning is set (changing an existing
        one would silently re-interpret the sealed-window cache and the
        cover index under different window boundaries)."""
        if partition_h <= 0:
            raise ValueError("partition_h must be positive")
        if self._partition_h is not None and self._partition_h != partition_h:
            raise ValueError(
                f"database is already partitioned with h={self._partition_h}"
            )
        self._partition_h = partition_h
        if self._cover_index and self.has_table("raw_tuples"):
            # Covers indexed while unpartitioned (a pre-v2 load) may have
            # been fitted on partial window data; under the newly adopted
            # boundaries, keep only those whose windows are already
            # sealed — the rest refit safely on next demand.
            sealed = sealed_window_count(self.raw_count(), partition_h)
            self._cover_index = {
                c: rid for c, rid in self._cover_index.items() if c < sealed
            }

    def ingest_tuples(self, batch: TupleBatch) -> int:
        """Append a batch of raw measurements to ``raw_tuples``.

        One vectorized fill per column; sealed-window views stay valid
        (appends land past them), only the full-stream snapshot refreshes.
        A cover stored for a window that was still *open* is dropped from
        the latest-cover index when the window gains tuples — it was
        fitted on partial data and must be refit on next demand.  Sealed
        windows can't gain tuples, so their covers are never touched.
        """
        with self._lock:
            table = self.table("raw_tuples")
            start = len(table)
            n = table.insert_columns(t=batch.t, x=batch.x, y=batch.y, s=batch.s)
            if n:
                self._epoch += 1
            if n and self._partition_h is not None:
                self._last_touched = touched_windows(start, n, self._partition_h)
                for c in self._last_touched:
                    self._cover_index.pop(c, None)
                    self._window_epochs[c] = self._epoch
            else:
                self._last_touched = range(0)
        return n

    @property
    def last_touched_windows(self) -> range:
        """Windows touched by the most recent :meth:`ingest_tuples` call —
        the single source the server uses to invalidate its cover caches
        (empty for unpartitioned databases)."""
        return self._last_touched

    @property
    def epoch(self) -> int:
        """Monotone ingest epoch: +1 per non-empty :meth:`ingest_tuples`."""
        return self._epoch

    def window_epoch(self, c: int) -> int:
        """Epoch of the last ingest that landed tuples in window ``c``
        (0 if the window has never received data).  Frozen forever once
        the window seals — appends only ever land past sealed windows."""
        return self._window_epochs.get(int(c), 0)

    def snapshot(self) -> StorageSnapshot:
        """An immutable epoch-stamped snapshot of the tuple stream.

        Captured under the database lock, so the pinned prefix, the epoch
        and the tail window's content stamp are mutually consistent; all
        subsequent reads through the snapshot are lock-free.
        """
        with self._lock:
            batch = self.raw_tuples()
            n = len(batch)
            tail_c = -1
            tail_epoch = 0
            if self._partition_h is not None and n:
                tail_c = (n - 1) // self._partition_h
                tail_epoch = self._window_epochs.get(tail_c, 0)
            return StorageSnapshot(
                batch=batch,
                epoch=self._epoch,
                h=self._partition_h,
                _window_epochs=self._window_epochs,
                _tail_c=tail_c,
                _tail_epoch=tail_epoch,
            )

    def raw_count(self) -> int:
        """Number of raw tuples stored."""
        return len(self.table("raw_tuples"))

    def raw_tuples(self) -> TupleBatch:
        """Snapshot of all stored raw tuples as a columnar batch.

        Zero-copy: the batch wraps read-only views of the live column
        buffers, so the cost is O(1) regardless of history length.  Safe
        under concurrent ingest: the cache refresh runs under the
        database lock, and a stale hit is still a valid (slightly older)
        snapshot."""
        table = self.table("raw_tuples")
        cached = self._raw_cache
        if cached is not None and len(cached) == len(table):
            return cached
        with self._lock:
            cached = self._raw_cache
            if cached is not None and len(cached) == len(table):
                return cached
            cols = table.scan()
            fresh = TupleBatch(cols["t"], cols["x"], cols["y"], cols["s"])
            if self._sealed_windows and (
                cached is None
                or (
                    len(cached)
                    and len(fresh)
                    and not np.shares_memory(fresh.t, cached.t)
                )
            ):
                # A growth reallocation superseded the column buffers:
                # drop every cached view stranded on an old generation so
                # the store doesn't pin it (they re-slice lazily, with
                # identical contents, on next access).
                self._sealed_windows = {
                    c: v
                    for c, v in self._sealed_windows.items()
                    if np.shares_memory(v.t, fresh.t)
                }
            self._raw_cache = fresh
            return fresh

    # -- window partitioning --------------------------------------------------

    def _require_partition(self) -> int:
        if self._partition_h is None:
            raise RuntimeError("database has no window partitioning configured")
        return self._partition_h

    def sealed_window_ids(self) -> range:
        """Indices of the sealed (full, immutable) raw-tuple windows."""
        return range(sealed_window_count(self.raw_count(), self._require_partition()))

    def is_sealed(self, c: int) -> bool:
        return c in self.sealed_window_ids()

    def window_view(self, c: int) -> TupleBatch:
        """Zero-copy view of raw-tuple window ``W_c``.

        Sealed windows are cached: repeated calls return the *same*
        immutable :class:`TupleBatch` object, until a column-buffer
        growth reallocation supersedes the view's backing storage — then
        a fresh (content-identical) view of the live buffer replaces it,
        so the cache never pins old buffer generations.  The open tail
        window is re-sliced per call since it is still growing."""
        h = self._require_partition()
        batch = self.raw_tuples()
        cached = self._sealed_windows.get(c)
        if cached is not None and np.shares_memory(cached.t, batch.t):
            return cached
        view = window(batch, c, h)
        if len(view) == h:  # full -> sealed: no append can ever change it
            with self._lock:  # raw_tuples may be pruning the dict
                self._sealed_windows[c] = view
        return view

    def window_views(self) -> WindowSlices:
        """All current windows as a zero-copy sequence view."""
        return WindowSlices(self.raw_tuples(), self._require_partition())

    # -- model covers ---------------------------------------------------------

    def store_cover_blob(self, window_c: int, valid_until: float, blob: bytes) -> int:
        """Persist one window's serialized model cover."""
        with self._lock:
            rid = self.table("model_cover").insert((window_c, valid_until, blob))
            self._cover_index[int(window_c)] = rid
        return rid

    def latest_cover_blob(self) -> Optional[tuple]:
        """Most recently stored *still-valid* ``(window_c, valid_until,
        blob)`` or None.  Reads through the cover index, so covers whose
        windows grew after they were fitted are not served."""
        with self._lock:  # the index may be resized by a concurrent store
            if not self._cover_index:
                return None
            rid = max(self._cover_index.values())
        window_c, valid_until, blob = self.table("model_cover").row(rid)
        return int(window_c), float(valid_until), blob

    def cover_blob_for_window(self, window_c: int) -> Optional[tuple]:
        """Latest stored cover for a specific window, or None.

        O(1): a point lookup through the per-window latest-cover index."""
        rid = self._cover_index.get(int(window_c))
        if rid is None:
            return None
        stored_c, valid_until, blob = self.table("model_cover").row(rid)
        return int(stored_c), float(valid_until), blob

    def cover_index(self) -> Dict[int, int]:
        """Copy of the ``window_c -> newest row id`` cover index."""
        with self._lock:
            return dict(self._cover_index)

    def _rebuild_cover_index(self) -> None:
        """Recompute the cover index from the ``model_cover`` table — the
        pre-v2 load path in :mod:`repro.storage.persist`, where no saved
        index exists (always an unpartitioned database; open-window
        covers are filtered later if :meth:`set_partition_h` adopts a
        partitioning)."""
        self._cover_index.clear()
        if not self.has_table("model_cover"):
            return
        for rid, c in enumerate(self.table("model_cover").column("window_c")):
            self._cover_index[int(c)] = rid

    def _restore_partition_state(
        self, partition_h: Optional[int], cover_index: Mapping[int, int]
    ) -> None:
        """Adopt persisted partition metadata (see :mod:`repro.storage.persist`)."""
        if partition_h is not None and partition_h <= 0:
            raise ValueError("partition_h must be positive")
        self._partition_h = partition_h
        n_rows = len(self.table("model_cover")) if self.has_table("model_cover") else 0
        for c, rid in cover_index.items():
            if not 0 <= rid < n_rows:
                raise ValueError(f"cover index row id {rid} out of range")
        self._cover_index = {int(c): int(rid) for c, rid in cover_index.items()}
