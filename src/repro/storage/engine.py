"""The embedded database: a named collection of tables plus the two
EnviroMeter-specific accessors (``raw_tuples`` and ``model_cover``).

The server (:mod:`repro.server`) owns one :class:`Database`; the query
processors read tuple windows out of it and the cover builder writes
serialized covers back into it, mirroring Figure 1 of the paper.

The ``raw_tuples`` table is *window-partitioned*: with a ``partition_h``
configured, the stream is split into count-based windows ``W_c`` of
``partition_h`` tuples.  Windows behind the write head are *sealed* —
append-only storage guarantees their rows can never change — and the
database caches one immutable zero-copy :class:`TupleBatch` view per
sealed window, so repeated window reads cost a dict lookup rather than a
re-slice (and never a copy).  ``model_cover`` writes maintain a
per-window latest-cover index, making :meth:`cover_blob_for_window` an
O(1) point lookup instead of a full column scan.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import (
    WindowSlices,
    sealed_window_count,
    touched_windows,
    window,
)
from repro.storage.schema import MODEL_COVER_SCHEMA, RAW_TUPLES_SCHEMA, Schema
from repro.storage.table import Table


class Database:
    """An embedded database instance.

    ``partition_h`` is the count-based window size used to partition the
    ``raw_tuples`` table (``None`` for databases that don't store a tuple
    stream).
    """

    def __init__(self, partition_h: Optional[int] = None) -> None:
        if partition_h is not None and partition_h <= 0:
            raise ValueError("partition_h must be positive")
        self._tables: Dict[str, Table] = {}
        self._partition_h = partition_h
        # window_c -> row id of the *newest* cover stored for that window.
        self._cover_index: Dict[int, int] = {}
        # window c -> cached immutable zero-copy view of the sealed window.
        self._sealed_windows: Dict[int, TupleBatch] = {}
        self._raw_cache: Optional[TupleBatch] = None
        self._last_touched: range = range(0)

    # -- generic table management -------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple:
        return tuple(sorted(self._tables))

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]
        if name == "model_cover":
            self._cover_index.clear()
        elif name == "raw_tuples":
            self._sealed_windows.clear()
            self._raw_cache = None
            self._last_touched = range(0)

    # -- EnviroMeter-specific schema ------------------------------------------

    @classmethod
    def for_enviro_meter(cls, partition_h: int = 240) -> "Database":
        """Database pre-created with the Figure 1 tables, with the raw
        tuple stream partitioned into windows of ``partition_h`` tuples."""
        db = cls(partition_h=partition_h)
        db.create_table("raw_tuples", RAW_TUPLES_SCHEMA)
        db.create_table("model_cover", MODEL_COVER_SCHEMA)
        return db

    @property
    def partition_h(self) -> Optional[int]:
        return self._partition_h

    def set_partition_h(self, partition_h: int) -> None:
        """Adopt a window partitioning on an unpartitioned database.

        Only allowed while no partitioning is set (changing an existing
        one would silently re-interpret the sealed-window cache and the
        cover index under different window boundaries)."""
        if partition_h <= 0:
            raise ValueError("partition_h must be positive")
        if self._partition_h is not None and self._partition_h != partition_h:
            raise ValueError(
                f"database is already partitioned with h={self._partition_h}"
            )
        self._partition_h = partition_h
        if self._cover_index and self.has_table("raw_tuples"):
            # Covers indexed while unpartitioned (a pre-v2 load) may have
            # been fitted on partial window data; under the newly adopted
            # boundaries, keep only those whose windows are already
            # sealed — the rest refit safely on next demand.
            sealed = sealed_window_count(self.raw_count(), partition_h)
            self._cover_index = {
                c: rid for c, rid in self._cover_index.items() if c < sealed
            }

    def ingest_tuples(self, batch: TupleBatch) -> int:
        """Append a batch of raw measurements to ``raw_tuples``.

        One vectorized fill per column; sealed-window views stay valid
        (appends land past them), only the full-stream snapshot refreshes.
        A cover stored for a window that was still *open* is dropped from
        the latest-cover index when the window gains tuples — it was
        fitted on partial data and must be refit on next demand.  Sealed
        windows can't gain tuples, so their covers are never touched.
        """
        table = self.table("raw_tuples")
        start = len(table)
        n = table.insert_columns(t=batch.t, x=batch.x, y=batch.y, s=batch.s)
        if n and self._partition_h is not None:
            self._last_touched = touched_windows(start, n, self._partition_h)
            for c in self._last_touched:
                self._cover_index.pop(c, None)
        else:
            self._last_touched = range(0)
        return n

    @property
    def last_touched_windows(self) -> range:
        """Windows touched by the most recent :meth:`ingest_tuples` call —
        the single source the server uses to invalidate its cover caches
        (empty for unpartitioned databases)."""
        return self._last_touched

    def raw_count(self) -> int:
        """Number of raw tuples stored."""
        return len(self.table("raw_tuples"))

    def raw_tuples(self) -> TupleBatch:
        """Snapshot of all stored raw tuples as a columnar batch.

        Zero-copy: the batch wraps read-only views of the live column
        buffers, so the cost is O(1) regardless of history length."""
        table = self.table("raw_tuples")
        cached = self._raw_cache
        if cached is None or len(cached) != len(table):
            cols = table.scan()
            fresh = TupleBatch(cols["t"], cols["x"], cols["y"], cols["s"])
            if self._sealed_windows and (
                cached is None
                or (
                    len(cached)
                    and len(fresh)
                    and not np.shares_memory(fresh.t, cached.t)
                )
            ):
                # A growth reallocation superseded the column buffers:
                # drop every cached view stranded on an old generation so
                # the store doesn't pin it (they re-slice lazily, with
                # identical contents, on next access).
                self._sealed_windows = {
                    c: v
                    for c, v in self._sealed_windows.items()
                    if np.shares_memory(v.t, fresh.t)
                }
            self._raw_cache = fresh
        return self._raw_cache

    # -- window partitioning --------------------------------------------------

    def _require_partition(self) -> int:
        if self._partition_h is None:
            raise RuntimeError("database has no window partitioning configured")
        return self._partition_h

    def sealed_window_ids(self) -> range:
        """Indices of the sealed (full, immutable) raw-tuple windows."""
        return range(sealed_window_count(self.raw_count(), self._require_partition()))

    def is_sealed(self, c: int) -> bool:
        return c in self.sealed_window_ids()

    def window_view(self, c: int) -> TupleBatch:
        """Zero-copy view of raw-tuple window ``W_c``.

        Sealed windows are cached: repeated calls return the *same*
        immutable :class:`TupleBatch` object, until a column-buffer
        growth reallocation supersedes the view's backing storage — then
        a fresh (content-identical) view of the live buffer replaces it,
        so the cache never pins old buffer generations.  The open tail
        window is re-sliced per call since it is still growing."""
        h = self._require_partition()
        batch = self.raw_tuples()
        cached = self._sealed_windows.get(c)
        if cached is not None and np.shares_memory(cached.t, batch.t):
            return cached
        view = window(batch, c, h)
        if len(view) == h:  # full -> sealed: no append can ever change it
            self._sealed_windows[c] = view
        return view

    def window_views(self) -> WindowSlices:
        """All current windows as a zero-copy sequence view."""
        return WindowSlices(self.raw_tuples(), self._require_partition())

    # -- model covers ---------------------------------------------------------

    def store_cover_blob(self, window_c: int, valid_until: float, blob: bytes) -> int:
        """Persist one window's serialized model cover."""
        rid = self.table("model_cover").insert((window_c, valid_until, blob))
        self._cover_index[int(window_c)] = rid
        return rid

    def latest_cover_blob(self) -> Optional[tuple]:
        """Most recently stored *still-valid* ``(window_c, valid_until,
        blob)`` or None.  Reads through the cover index, so covers whose
        windows grew after they were fitted are not served."""
        if not self._cover_index:
            return None
        rid = max(self._cover_index.values())
        window_c, valid_until, blob = self.table("model_cover").row(rid)
        return int(window_c), float(valid_until), blob

    def cover_blob_for_window(self, window_c: int) -> Optional[tuple]:
        """Latest stored cover for a specific window, or None.

        O(1): a point lookup through the per-window latest-cover index."""
        rid = self._cover_index.get(int(window_c))
        if rid is None:
            return None
        stored_c, valid_until, blob = self.table("model_cover").row(rid)
        return int(stored_c), float(valid_until), blob

    def cover_index(self) -> Dict[int, int]:
        """Copy of the ``window_c -> newest row id`` cover index."""
        return dict(self._cover_index)

    def _rebuild_cover_index(self) -> None:
        """Recompute the cover index from the ``model_cover`` table — the
        pre-v2 load path in :mod:`repro.storage.persist`, where no saved
        index exists (always an unpartitioned database; open-window
        covers are filtered later if :meth:`set_partition_h` adopts a
        partitioning)."""
        self._cover_index.clear()
        if not self.has_table("model_cover"):
            return
        for rid, c in enumerate(self.table("model_cover").column("window_c")):
            self._cover_index[int(c)] = rid

    def _restore_partition_state(
        self, partition_h: Optional[int], cover_index: Mapping[int, int]
    ) -> None:
        """Adopt persisted partition metadata (see :mod:`repro.storage.persist`)."""
        if partition_h is not None and partition_h <= 0:
            raise ValueError("partition_h must be positive")
        self._partition_h = partition_h
        n_rows = len(self.table("model_cover")) if self.has_table("model_cover") else 0
        for c, rid in cover_index.items():
            if not 0 <= rid < n_rows:
                raise ValueError(f"cover index row id {rid} out of range")
        self._cover_index = {int(c): int(rid) for c, rid in cover_index.items()}
