"""The embedded database: a named collection of tables plus the two
EnviroMeter-specific accessors (``raw_tuples`` and ``model_cover``).

The server (:mod:`repro.server`) owns one :class:`Database`; the query
processors read tuple windows out of it and the cover builder writes
serialized covers back into it, mirroring Figure 1 of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.tuples import TupleBatch
from repro.storage.schema import MODEL_COVER_SCHEMA, RAW_TUPLES_SCHEMA, Schema
from repro.storage.table import Table


class Database:
    """An embedded database instance."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    # -- generic table management -------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple:
        return tuple(sorted(self._tables))

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]

    # -- EnviroMeter-specific schema ------------------------------------------

    @classmethod
    def for_enviro_meter(cls) -> "Database":
        """Database pre-created with the Figure 1 tables."""
        db = cls()
        db.create_table("raw_tuples", RAW_TUPLES_SCHEMA)
        db.create_table("model_cover", MODEL_COVER_SCHEMA)
        return db

    def ingest_tuples(self, batch: TupleBatch) -> int:
        """Append a batch of raw measurements to ``raw_tuples``."""
        table = self.table("raw_tuples")
        return table.insert_columns(t=batch.t, x=batch.x, y=batch.y, s=batch.s)

    def raw_tuples(self) -> TupleBatch:
        """Snapshot of all stored raw tuples as a columnar batch."""
        table = self.table("raw_tuples")
        cols = table.scan()
        return TupleBatch(cols["t"], cols["x"], cols["y"], cols["s"])

    def store_cover_blob(self, window_c: int, valid_until: float, blob: bytes) -> int:
        """Persist one window's serialized model cover."""
        return self.table("model_cover").insert((window_c, valid_until, blob))

    def latest_cover_blob(self) -> Optional[tuple]:
        """Most recently stored ``(window_c, valid_until, blob)`` or None."""
        table = self.table("model_cover")
        if not len(table):
            return None
        window_c = table.column("window_c")
        valid_until = table.column("valid_until")
        blobs = table.column("cover_blob")
        i = len(table) - 1
        return int(window_c[i]), float(valid_until[i]), blobs[i]

    def cover_blob_for_window(self, window_c: int) -> Optional[tuple]:
        """Latest stored cover for a specific window, or None."""
        table = self.table("model_cover")
        if not len(table):
            return None
        windows = table.column("window_c")
        matches = np.flatnonzero(windows == window_c)
        if not len(matches):
            return None
        i = int(matches[-1])
        return (
            int(windows[i]),
            float(table.column("valid_until")[i]),
            table.column("cover_blob")[i],
        )
