"""Immutable, checksummed, column-grouped segment files for sealed windows.

Once a global count-window seals (the write head moves past it), its
rows can never change — the sealed-window immutability contract in
``README.md``.  The durable tier exploits that: each ``(shard, window)``
slice is frozen into one *segment file*, written atomically
(tmp + fsync + rename via :mod:`repro.storage.fsio`) and never modified
afterwards, so reads need no locking and crash recovery never has to
repair a segment — a segment either exists completely or not at all.

On-disk layout (little-endian)::

    b"EMSG"                          magic
    u32   version (1)
    u32   header_len
    u32   crc32(header)
    header:
        u32 shard   u64 window_c   u32 h   u64 n_rows   u64 stamp
        8 x f8      sketch bounds (min/max x, y, t, s)
        u32 n_groups
        per group:
            str   name
            u8    codec (0 = raw, 1 = zlib)
            u64   raw_len      u64 comp_len      u32 crc32(raw bytes)
            u32   n_columns
            per column: str name, u8 dtype code (0 = <f8, 1 = <i8)
    group payloads, in directory order

Columns are stored in *groups* that compress and decompress as units —
the vertical-partitioning idea: the ``core`` group holds the scan
columns ``(t, x, y, s)``, the ``gids`` group holds the global stream
positions the exact gather orders by.  A reader asks for just the groups
it needs (:func:`read_segment` seeks past the rest), and every group is
independently CRC-checked against its uncompressed bytes, so corruption
anywhere — header or payload, flipped bit or truncation — surfaces as
:class:`SegmentCorrupt`, never as silently wrong rows.

The sketch persisted in the header is the window slice's zone map
(:class:`~repro.storage.sketch.WindowSketch`): recovery adopts it
without touching the payload, which is what keeps scatter pruning from
ever faulting a segment in just to skip it.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.data.tuples import TupleBatch
from repro.storage import fsio
from repro.storage.sketch import WindowSketch

_MAGIC = b"EMSG"
_VERSION = 1
_PREAMBLE = struct.Struct("<4sIII")  # magic, version, header_len, header crc
_META = struct.Struct("<IQIQQ8d")  # shard, window_c, h, n_rows, stamp, sketch
_GROUP_HEAD = struct.Struct("<BQQI")  # codec, raw_len, comp_len, crc32(raw)

#: Codec codes in the group directory.
CODEC_RAW, CODEC_ZLIB = 0, 1
_DTYPE_CODES = {"<f8": 0, "<i8": 1}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}

#: The scan column group every query touches.
CORE_COLUMNS = ("t", "x", "y", "s")


class SegmentCorrupt(ValueError):
    """A segment file failed structural or checksum validation."""


@dataclass(frozen=True)
class SegmentMeta:
    """Always-resident metadata of one segment (header only)."""

    shard: int
    window_c: int
    h: int
    n_rows: int
    stamp: int
    sketch: WindowSketch


@dataclass(frozen=True)
class Segment:
    """A decoded segment: metadata plus the requested column groups."""

    meta: SegmentMeta
    groups: Mapping[str, Mapping[str, np.ndarray]]

    def batch(self) -> TupleBatch:
        core = self.groups["core"]
        return TupleBatch(core["t"], core["x"], core["y"], core["s"])

    def gids(self) -> np.ndarray:
        return self.groups["gids"]["gid"]


def segment_filename(shard: int, window_c: int) -> str:
    return f"seg-s{shard:04d}-w{window_c:08d}.seg"


def _write_str(buf: io.BytesIO, s: str) -> None:
    data = s.encode("utf-8")
    buf.write(struct.pack("<I", len(data)))
    buf.write(data)


def _read_str(data: bytes, offset: int) -> Tuple[str, int]:
    (n,) = struct.unpack_from("<I", data, offset)
    offset += 4
    return data[offset : offset + n].decode("utf-8"), offset + n


def _pack_group(
    columns: Mapping[str, np.ndarray], codec: int
) -> Tuple[bytes, bytes, int, int]:
    """Directory entry tail + payload for one column group."""
    raw = b"".join(
        np.ascontiguousarray(arr).tobytes() for arr in columns.values()
    )
    payload = zlib.compress(raw, 6) if codec == CODEC_ZLIB else raw
    return raw, payload, len(raw), zlib.crc32(raw)


def write_segment(
    path: Union[str, Path],
    *,
    shard: int,
    window_c: int,
    h: int,
    stamp: int,
    batch: TupleBatch,
    gids: np.ndarray,
    sketch: WindowSketch,
    compress: bool = True,
) -> int:
    """Atomically write one sealed ``(shard, window)`` slice.

    Returns the file size in bytes.  The write is all-or-nothing: the
    file only appears under ``path`` after its full content is fsynced
    (see :func:`repro.storage.fsio.atomic_write_bytes`).
    """
    if len(gids) != len(batch):
        raise ValueError("gids must align with the batch rows")
    codec = CODEC_ZLIB if compress else CODEC_RAW
    groups: Sequence[Tuple[str, Dict[str, np.ndarray]]] = (
        ("core", {name: getattr(batch, name) for name in CORE_COLUMNS}),
        ("gids", {"gid": np.ascontiguousarray(gids, dtype="<i8")}),
    )
    header = io.BytesIO()
    header.write(
        _META.pack(
            shard,
            window_c,
            h,
            len(batch),
            stamp,
            sketch.min_x,
            sketch.max_x,
            sketch.min_y,
            sketch.max_y,
            sketch.min_t,
            sketch.max_t,
            sketch.min_s,
            sketch.max_s,
        )
    )
    header.write(struct.pack("<I", len(groups)))
    payloads = []
    for name, columns in groups:
        typed = {
            col: np.ascontiguousarray(
                arr, dtype="<i8" if arr.dtype.kind == "i" else "<f8"
            )
            for col, arr in columns.items()
        }
        _raw, payload, raw_len, crc = _pack_group(typed, codec)
        payloads.append(payload)
        _write_str(header, name)
        header.write(_GROUP_HEAD.pack(codec, raw_len, len(payload), crc))
        header.write(struct.pack("<I", len(typed)))
        for col, arr in typed.items():
            _write_str(header, col)
            header.write(
                struct.pack("<B", _DTYPE_CODES[arr.dtype.str.lstrip("=|")])
            )
    header_bytes = header.getvalue()
    blob = (
        _PREAMBLE.pack(_MAGIC, _VERSION, len(header_bytes), zlib.crc32(header_bytes))
        + header_bytes
        + b"".join(payloads)
    )
    fsio.atomic_write_bytes(path, blob)
    return len(blob)


def _parse_header(data: bytes, path: Path):
    """Validated ``(meta, directory, payload_offset)`` off a file image."""
    if len(data) < _PREAMBLE.size:
        raise SegmentCorrupt(f"{path}: truncated segment preamble")
    magic, version, header_len, header_crc = _PREAMBLE.unpack_from(data, 0)
    if magic != _MAGIC:
        raise SegmentCorrupt(f"{path}: not a segment file")
    if version != _VERSION:
        raise SegmentCorrupt(f"{path}: unsupported segment version {version}")
    header = data[_PREAMBLE.size : _PREAMBLE.size + header_len]
    if len(header) != header_len or zlib.crc32(header) != header_crc:
        raise SegmentCorrupt(f"{path}: segment header failed its checksum")
    meta_tuple = _META.unpack_from(header, 0)
    shard, window_c, h, n_rows, stamp = meta_tuple[:5]
    bounds = meta_tuple[5:]
    sketch = (
        WindowSketch(int(n_rows), *bounds) if n_rows else WindowSketch.EMPTY
    )
    meta = SegmentMeta(int(shard), int(window_c), int(h), int(n_rows), int(stamp), sketch)
    offset = _META.size
    (n_groups,) = struct.unpack_from("<I", header, offset)
    offset += 4
    directory = []  # (name, codec, raw_len, comp_len, crc, [(col, dtype)])
    payload_at = _PREAMBLE.size + header_len
    for _ in range(n_groups):
        name, offset = _read_str(header, offset)
        codec, raw_len, comp_len, crc = _GROUP_HEAD.unpack_from(header, offset)
        offset += _GROUP_HEAD.size
        (n_cols,) = struct.unpack_from("<I", header, offset)
        offset += 4
        cols = []
        for _ in range(n_cols):
            col, offset = _read_str(header, offset)
            (code,) = struct.unpack_from("<B", header, offset)
            offset += 1
            cols.append((col, _CODE_DTYPES[code]))
        directory.append((name, int(codec), int(raw_len), int(comp_len), int(crc), cols))
    return meta, directory, payload_at


def read_segment_meta(path: Union[str, Path]) -> SegmentMeta:
    """Header-only read: metadata and sketch, no payload decode."""
    path = Path(path)
    with path.open("rb") as f:
        preamble = f.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise SegmentCorrupt(f"{path}: truncated segment preamble")
        _magic, _version, header_len, _crc = _PREAMBLE.unpack(preamble)
        data = preamble + f.read(header_len)
    meta, _directory, _payload_at = _parse_header(data, path)
    return meta


def read_segment(
    path: Union[str, Path], groups: Sequence[str] = ("core", "gids")
) -> Segment:
    """Read and validate the requested column groups of a segment.

    Groups not asked for are never decompressed (their payload bytes are
    skipped wholesale).  Each decoded group's bytes are verified against
    the directory's CRC and length before any array is built.
    """
    path = Path(path)
    data = path.read_bytes()
    meta, directory, payload_at = _parse_header(data, path)
    wanted = set(groups)
    unknown = wanted - {name for name, *_ in directory}
    if unknown:
        raise KeyError(f"{path}: no column group(s) {sorted(unknown)}")
    decoded: Dict[str, Dict[str, np.ndarray]] = {}
    offset = payload_at
    for name, codec, raw_len, comp_len, crc, cols in directory:
        payload = data[offset : offset + comp_len]
        offset += comp_len
        if name not in wanted:
            continue
        if len(payload) != comp_len:
            raise SegmentCorrupt(f"{path}: group {name!r} payload truncated")
        try:
            raw = zlib.decompress(payload) if codec == CODEC_ZLIB else payload
        except zlib.error as exc:
            raise SegmentCorrupt(
                f"{path}: group {name!r} failed to decompress ({exc})"
            ) from None
        if len(raw) != raw_len or zlib.crc32(raw) != crc:
            raise SegmentCorrupt(
                f"{path}: group {name!r} failed its checksum"
            )
        arrays: Dict[str, np.ndarray] = {}
        at = 0
        for col, dtype in cols:
            arr = np.frombuffer(raw, dtype=dtype, count=meta.n_rows, offset=at)
            at += meta.n_rows * 8
            arrays[col] = arr
        if at != raw_len:
            raise SegmentCorrupt(
                f"{path}: group {name!r} length disagrees with its row count"
            )
        decoded[name] = arrays
    return Segment(meta, decoded)
