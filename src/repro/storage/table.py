"""Append-only columnar tables.

Numeric columns live in one amortised-doubling numpy buffer per column;
byte columns in Python lists.  Appends are O(1) amortised, bulk appends
are single vectorized slice fills, and reads return immutable *views* of
the filled prefix — a snapshot is O(1) and never copies, and a
long-running query never sees a half-appended row because writes only
ever touch positions past the snapshot's length.

Failed writes are atomic: ``insert`` and ``insert_columns`` validate the
whole row / column set up front, so a rejected write leaves every column
untouched (see ``README.md`` in this package).

Concurrency contract (the serving layer's reader-writer isolation rides
on it):

* writers serialise on the table's write lock — one appender at a time;
* readers never lock.  Every write commits in an order that keeps any
  interleaved read torn-free: buffer reallocation installs a fully
  prefix-copied buffer before the swap, new values land past the filled
  length, and the length advances last (``_row_count`` after every
  column).  A reader that loads the length *before* the buffer therefore
  always sees a fully-written prefix, whichever side of an in-flight
  append it lands on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.schema import ColumnType, Schema

_CHUNK = 8_192


class _NumericColumn:
    """Growable float64/int64 column backed by one doubling buffer.

    The buffer is only ever written at positions ``>= len(self)``, so the
    read-only prefix views handed out by :meth:`snapshot` stay stable as
    the column grows; a reallocation on growth leaves earlier snapshots
    pointing at the old buffer.
    """

    __slots__ = ("dtype", "_buf", "_len", "_view")

    def __init__(self, dtype: np.dtype) -> None:
        self.dtype = dtype
        self._buf = np.empty(_CHUNK, dtype=dtype)
        self._len = 0
        self._view: Optional[np.ndarray] = None

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        cap = len(self._buf)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        buf = np.empty(cap, dtype=self.dtype)
        buf[: self._len] = self._buf[: self._len]
        self._buf = buf
        self._view = None

    def prepare(self, value: Any) -> Any:
        """Validate/convert one value without mutating the column."""
        return self.dtype.type(value)

    def append_prepared(self, value: Any) -> None:
        self._reserve(1)
        self._buf[self._len] = value
        self._len += 1
        self._view = None

    def append(self, value: float) -> None:
        self.append_prepared(self.prepare(value))

    def prepare_bulk(self, values: Any) -> np.ndarray:
        """Validate/convert an array for :meth:`extend` without mutating."""
        arr = np.asarray(values, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"column data must be one-dimensional, got {arr.ndim}-d")
        return arr

    def extend(self, values: np.ndarray) -> None:
        """Vectorized bulk append: one slice assignment, no Python loop."""
        arr = self.prepare_bulk(values)
        k = len(arr)
        if not k:
            return
        self._reserve(k)
        self._buf[self._len : self._len + k] = arr
        self._len += k
        self._view = None

    def __len__(self) -> int:
        return self._len

    def get(self, i: int) -> Any:
        """One value by position — O(1), no snapshot materialisation."""
        return self._buf[i]

    def snapshot(self) -> np.ndarray:
        """Immutable zero-copy view of the whole column (cached).

        Safe to call concurrently with an appender: the filled length is
        loaded *before* the buffer, so whichever buffer generation the
        read lands on contains a fully-written prefix of that length.
        The cache is validated by length and buffer identity rather than
        cleared-flag state, so a racing reader re-caching a stale view
        only costs the next caller a rebuild, never a torn read.
        """
        n = self._len
        view = self._view
        if view is None or view.shape[0] != n or view.base is not self._buf:
            view = self._buf[:n]
            view.flags.writeable = False
            self._view = view
        return view


class _BytesColumn:
    """Growable column of ``bytes`` values."""

    __slots__ = ("_values", "_snap")

    def __init__(self) -> None:
        self._values: List[bytes] = []
        self._snap: Optional[Tuple[bytes, ...]] = None

    def prepare(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(value).__name__}")
        return bytes(value)

    def append_prepared(self, value: bytes) -> None:
        self._values.append(value)
        self._snap = None

    def append(self, value: bytes) -> None:
        self.append_prepared(self.prepare(value))

    def __len__(self) -> int:
        return len(self._values)

    def get(self, i: int) -> bytes:
        return self._values[i]

    def snapshot(self) -> Tuple[bytes, ...]:
        snap = self._snap
        if snap is None or len(snap) != len(self._values):
            snap = tuple(self._values)
            self._snap = snap
        return snap


_DTYPES = {
    ColumnType.FLOAT64: np.dtype(np.float64),
    ColumnType.INT64: np.dtype(np.int64),
}


class Table:
    """One append-only table with a fixed :class:`Schema`.

    Writes serialise on an internal lock; reads are lock-free and
    consistent — ``scan``/``column`` clamp every column snapshot to the
    committed row count (loaded first), so a scan taken mid-append never
    mixes columns of different lengths.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name or not name.isidentifier():
            raise ValueError(f"invalid table name: {name!r}")
        self.name = name
        self.schema = schema
        self._columns: Dict[str, Any] = {}
        for col in schema.columns:
            if col.ctype is ColumnType.BYTES:
                self._columns[col.name] = _BytesColumn()
            else:
                self._columns[col.name] = _NumericColumn(_DTYPES[col.ctype])
        self._row_count = 0
        self._lock = threading.RLock()

    # -- writes -------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Append one row (values in schema order); returns its row id.

        The whole row is validated before any column is touched, so a
        rejected row leaves the table unchanged.
        """
        if len(row) != len(self.schema):
            raise ValueError(
                f"{self.name}: row has {len(row)} values, schema has {len(self.schema)}"
            )
        with self._lock:
            prepared = [
                self._columns[col.name].prepare(value)
                for col, value in zip(self.schema.columns, row)
            ]
            for col, value in zip(self.schema.columns, prepared):
                self._columns[col.name].append_prepared(value)
            rid = self._row_count
            self._row_count += 1
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def insert_columns(self, **columns: np.ndarray) -> int:
        """Bulk-append numeric column data given as keyword arrays.

        All schema columns must be provided and be the same length.  Only
        valid for tables without BYTES columns.  Validation (schema match,
        column types, dtype conversion, lengths) happens before any column
        is extended, so a failed bulk insert leaves the table unchanged.
        """
        if set(columns) != set(self.schema.names):
            raise ValueError(
                f"{self.name}: expected columns {self.schema.names}, got {tuple(columns)}"
            )
        if self.schema.has_bytes:
            bad = next(c.name for c in self.schema.columns if c.ctype is ColumnType.BYTES)
            raise TypeError(f"{self.name}.{bad}: bulk insert not supported for BYTES")
        with self._lock:
            arrays = {
                col.name: self._columns[col.name].prepare_bulk(columns[col.name])
                for col in self.schema.columns
            }
            lengths = {len(a) for a in arrays.values()}
            if len(lengths) != 1:
                raise ValueError(f"{self.name}: column arrays have differing lengths")
            for col in self.schema.columns:
                self._columns[col.name].extend(arrays[col.name])
            (n,) = lengths
            self._row_count += n
        return n

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def column(self, name: str) -> Any:
        """Immutable snapshot of one column (ndarray view or tuple of bytes).

        Clamped to the committed row count, which is loaded *before* the
        column snapshot: a concurrent appender bumps the count only after
        every column holds the new rows, so the clamp always selects
        fully-written data.
        """
        self.schema.column(name)  # raises KeyError for unknown names
        n = self._row_count
        snap = self._columns[name].snapshot()
        return snap if len(snap) == n else snap[:n]

    def scan(self) -> Dict[str, Any]:
        """Snapshot of all columns, keyed by name.  O(#columns): numeric
        snapshots are zero-copy views, never a concatenation of history.
        All columns are clamped to one committed row count (loaded before
        any snapshot), so a scan taken while a writer is mid-append never
        mixes columns of different lengths."""
        n = self._row_count
        out: Dict[str, Any] = {}
        for name in self.schema.names:
            snap = self._columns[name].snapshot()
            out[name] = snap if len(snap) == n else snap[:n]
        return out

    def row(self, rid: int) -> Tuple[Any, ...]:
        """One row by id — O(#columns) point reads, no snapshots."""
        if not 0 <= rid < self._row_count:
            raise IndexError(f"{self.name}: row id {rid} out of range")
        return tuple(self._columns[name].get(rid) for name in self.schema.names)
