"""Append-only columnar tables.

Numeric columns live in chunked numpy arrays; byte columns in Python
lists.  Appends are O(1) amortised; reads return immutable snapshots so a
long-running query never sees a half-appended row.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.storage.schema import ColumnType, Schema

_CHUNK = 8_192


class _NumericColumn:
    """Growable float64/int64 column stored as a list of full chunks plus
    one partially-filled tail chunk."""

    __slots__ = ("dtype", "_chunks", "_tail", "_tail_len")

    def __init__(self, dtype: np.dtype) -> None:
        self.dtype = dtype
        self._chunks: List[np.ndarray] = []
        self._tail = np.empty(_CHUNK, dtype=dtype)
        self._tail_len = 0

    def append(self, value: float) -> None:
        self._tail[self._tail_len] = value
        self._tail_len += 1
        if self._tail_len == _CHUNK:
            self._chunks.append(self._tail)
            self._tail = np.empty(_CHUNK, dtype=self.dtype)
            self._tail_len = 0

    def extend(self, values: np.ndarray) -> None:
        for v in np.asarray(values, dtype=self.dtype):
            self.append(v)

    def __len__(self) -> int:
        return len(self._chunks) * _CHUNK + self._tail_len

    def snapshot(self) -> np.ndarray:
        """Immutable copy of the whole column."""
        parts = self._chunks + [self._tail[: self._tail_len]]
        out = np.concatenate(parts) if parts else np.empty(0, dtype=self.dtype)
        out.flags.writeable = False
        return out


class _BytesColumn:
    """Growable column of ``bytes`` values."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[bytes] = []

    def append(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(value).__name__}")
        self._values.append(bytes(value))

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> Tuple[bytes, ...]:
        return tuple(self._values)


_DTYPES = {
    ColumnType.FLOAT64: np.dtype(np.float64),
    ColumnType.INT64: np.dtype(np.int64),
}


class Table:
    """One append-only table with a fixed :class:`Schema`."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name or not name.isidentifier():
            raise ValueError(f"invalid table name: {name!r}")
        self.name = name
        self.schema = schema
        self._columns: Dict[str, Any] = {}
        for col in schema.columns:
            if col.ctype is ColumnType.BYTES:
                self._columns[col.name] = _BytesColumn()
            else:
                self._columns[col.name] = _NumericColumn(_DTYPES[col.ctype])
        self._row_count = 0

    # -- writes -------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Append one row (values in schema order); returns its row id."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"{self.name}: row has {len(row)} values, schema has {len(self.schema)}"
            )
        for col, value in zip(self.schema.columns, row):
            self._columns[col.name].append(value)
        rid = self._row_count
        self._row_count += 1
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def insert_columns(self, **columns: np.ndarray) -> int:
        """Bulk-append numeric column data given as keyword arrays.

        All schema columns must be provided and be the same length.  Only
        valid for tables without BYTES columns.
        """
        if set(columns) != set(self.schema.names):
            raise ValueError(
                f"{self.name}: expected columns {self.schema.names}, got {tuple(columns)}"
            )
        arrays = {k: np.asarray(v) for k, v in columns.items()}
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(f"{self.name}: column arrays have differing lengths")
        for col in self.schema.columns:
            store = self._columns[col.name]
            if isinstance(store, _BytesColumn):
                raise TypeError(f"{self.name}.{col.name}: bulk insert not supported for BYTES")
            store.extend(arrays[col.name])
        (n,) = lengths
        self._row_count += n
        return n

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def column(self, name: str) -> Any:
        """Immutable snapshot of one column (ndarray or tuple of bytes)."""
        self.schema.column(name)  # raises KeyError for unknown names
        return self._columns[name].snapshot()

    def scan(self) -> Dict[str, Any]:
        """Snapshot of all columns, keyed by name."""
        return {name: self.column(name) for name in self.schema.names}

    def row(self, rid: int) -> Tuple[Any, ...]:
        """One row by id.  O(#columns) snapshots — intended for point
        lookups in small tables like ``model_cover``, not bulk scans."""
        if not 0 <= rid < self._row_count:
            raise IndexError(f"{self.name}: row id {rid} out of range")
        return tuple(self._columns[name].snapshot()[rid] for name in self.schema.names)
