"""Append-only columnar tables.

Numeric columns live in one amortised-doubling numpy buffer per column;
byte columns in Python lists.  Appends are O(1) amortised, bulk appends
are single vectorized slice fills, and reads return immutable *views* of
the filled prefix — a snapshot is O(1) and never copies, and a
long-running query never sees a half-appended row because writes only
ever touch positions past the snapshot's length.

Failed writes are atomic: ``insert`` and ``insert_columns`` validate the
whole row / column set up front, so a rejected write leaves every column
untouched (see ``README.md`` in this package).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.schema import ColumnType, Schema

_CHUNK = 8_192


class _NumericColumn:
    """Growable float64/int64 column backed by one doubling buffer.

    The buffer is only ever written at positions ``>= len(self)``, so the
    read-only prefix views handed out by :meth:`snapshot` stay stable as
    the column grows; a reallocation on growth leaves earlier snapshots
    pointing at the old buffer.
    """

    __slots__ = ("dtype", "_buf", "_len", "_view")

    def __init__(self, dtype: np.dtype) -> None:
        self.dtype = dtype
        self._buf = np.empty(_CHUNK, dtype=dtype)
        self._len = 0
        self._view: Optional[np.ndarray] = None

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        cap = len(self._buf)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        buf = np.empty(cap, dtype=self.dtype)
        buf[: self._len] = self._buf[: self._len]
        self._buf = buf
        self._view = None

    def prepare(self, value: Any) -> Any:
        """Validate/convert one value without mutating the column."""
        return self.dtype.type(value)

    def append_prepared(self, value: Any) -> None:
        self._reserve(1)
        self._buf[self._len] = value
        self._len += 1
        self._view = None

    def append(self, value: float) -> None:
        self.append_prepared(self.prepare(value))

    def prepare_bulk(self, values: Any) -> np.ndarray:
        """Validate/convert an array for :meth:`extend` without mutating."""
        arr = np.asarray(values, dtype=self.dtype)
        if arr.ndim != 1:
            raise ValueError(f"column data must be one-dimensional, got {arr.ndim}-d")
        return arr

    def extend(self, values: np.ndarray) -> None:
        """Vectorized bulk append: one slice assignment, no Python loop."""
        arr = self.prepare_bulk(values)
        k = len(arr)
        if not k:
            return
        self._reserve(k)
        self._buf[self._len : self._len + k] = arr
        self._len += k
        self._view = None

    def __len__(self) -> int:
        return self._len

    def get(self, i: int) -> Any:
        """One value by position — O(1), no snapshot materialisation."""
        return self._buf[i]

    def snapshot(self) -> np.ndarray:
        """Immutable zero-copy view of the whole column (cached)."""
        view = self._view
        if view is None:
            view = self._buf[: self._len]
            view.flags.writeable = False
            self._view = view
        return view


class _BytesColumn:
    """Growable column of ``bytes`` values."""

    __slots__ = ("_values", "_snap")

    def __init__(self) -> None:
        self._values: List[bytes] = []
        self._snap: Optional[Tuple[bytes, ...]] = None

    def prepare(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(value).__name__}")
        return bytes(value)

    def append_prepared(self, value: bytes) -> None:
        self._values.append(value)
        self._snap = None

    def append(self, value: bytes) -> None:
        self.append_prepared(self.prepare(value))

    def __len__(self) -> int:
        return len(self._values)

    def get(self, i: int) -> bytes:
        return self._values[i]

    def snapshot(self) -> Tuple[bytes, ...]:
        if self._snap is None:
            self._snap = tuple(self._values)
        return self._snap


_DTYPES = {
    ColumnType.FLOAT64: np.dtype(np.float64),
    ColumnType.INT64: np.dtype(np.int64),
}


class Table:
    """One append-only table with a fixed :class:`Schema`."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name or not name.isidentifier():
            raise ValueError(f"invalid table name: {name!r}")
        self.name = name
        self.schema = schema
        self._columns: Dict[str, Any] = {}
        for col in schema.columns:
            if col.ctype is ColumnType.BYTES:
                self._columns[col.name] = _BytesColumn()
            else:
                self._columns[col.name] = _NumericColumn(_DTYPES[col.ctype])
        self._row_count = 0

    # -- writes -------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Append one row (values in schema order); returns its row id.

        The whole row is validated before any column is touched, so a
        rejected row leaves the table unchanged.
        """
        if len(row) != len(self.schema):
            raise ValueError(
                f"{self.name}: row has {len(row)} values, schema has {len(self.schema)}"
            )
        prepared = [
            self._columns[col.name].prepare(value)
            for col, value in zip(self.schema.columns, row)
        ]
        for col, value in zip(self.schema.columns, prepared):
            self._columns[col.name].append_prepared(value)
        rid = self._row_count
        self._row_count += 1
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def insert_columns(self, **columns: np.ndarray) -> int:
        """Bulk-append numeric column data given as keyword arrays.

        All schema columns must be provided and be the same length.  Only
        valid for tables without BYTES columns.  Validation (schema match,
        column types, dtype conversion, lengths) happens before any column
        is extended, so a failed bulk insert leaves the table unchanged.
        """
        if set(columns) != set(self.schema.names):
            raise ValueError(
                f"{self.name}: expected columns {self.schema.names}, got {tuple(columns)}"
            )
        if self.schema.has_bytes:
            bad = next(c.name for c in self.schema.columns if c.ctype is ColumnType.BYTES)
            raise TypeError(f"{self.name}.{bad}: bulk insert not supported for BYTES")
        arrays = {
            col.name: self._columns[col.name].prepare_bulk(columns[col.name])
            for col in self.schema.columns
        }
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(f"{self.name}: column arrays have differing lengths")
        for col in self.schema.columns:
            self._columns[col.name].extend(arrays[col.name])
        (n,) = lengths
        self._row_count += n
        return n

    # -- reads --------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    def column(self, name: str) -> Any:
        """Immutable snapshot of one column (ndarray view or tuple of bytes)."""
        self.schema.column(name)  # raises KeyError for unknown names
        return self._columns[name].snapshot()

    def scan(self) -> Dict[str, Any]:
        """Snapshot of all columns, keyed by name.  O(#columns): numeric
        snapshots are zero-copy views, never a concatenation of history."""
        return {name: self.column(name) for name in self.schema.names}

    def row(self, rid: int) -> Tuple[Any, ...]:
        """One row by id — O(#columns) point reads, no snapshots."""
        if not 0 <= rid < self._row_count:
            raise IndexError(f"{self.name}: row id {rid} out of range")
        return tuple(self._columns[name].get(rid) for name in self.schema.names)
