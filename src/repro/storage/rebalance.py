"""Adaptive shard rebalancing: the policy loop over the load tracker.

The mechanism lives elsewhere — :meth:`ShardRouter.split_shard` /
:meth:`ShardRouter.merge_cell` re-cut the layout as epoch-bumped
transactions, and the engines split hot shards' scans into read-replica
ops (:meth:`ShardedQueryEngine.set_replicas`).  This module is only the
*policy*: look at the :class:`~repro.storage.load.ShardLoadTracker`'s
EWMA skew and decide, one action per step, what to do about it:

1. a shard far above the mean load whose grid cell is still unsplit is
   **split** 2x2 (1x2 / 2x1 on degenerate strip grids) — ingest *and*
   query traffic for the hot region now spreads over the sub-tiles, and
   the sub-tiles' tighter zone-map sketches prune scatter fan-out that
   the whole cell could not;
2. a hot shard whose cell is already at the refinement limit gets
   **read replicas** instead — same rows, more parallelism;
3. a split cell whose tiles have *all* gone cold is **re-merged**, so a
   workload that moves on does not leave refinement debt behind.

One action per step keeps the loop observable and testable: callers
(the benchmark, an operator cron, tests) run steps until
:class:`RebalanceAction` ``kind == "none"``.  Each step ends with one
EWMA decay tick, so load that stops arriving ages out and merges
eventually fire.  Thresholds are ratios against the mean active-shard
load, making the policy scale-free in both row counts and query rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.region import RefinedRegionGrid
from repro.storage.load import skew_coefficient

__all__ = ["RebalanceAction", "ShardRebalancer"]


@dataclass(frozen=True)
class RebalanceAction:
    """What one :meth:`ShardRebalancer.step` did.

    ``kind`` is ``"split"`` (``shard`` split into ``new_shards``),
    ``"merge"`` (``cell``'s tiles folded into ``shard``), ``"replicas"``
    (``replicas`` is the new plan installed on the engine) or ``"none"``.
    """

    kind: str
    shard: Optional[int] = None
    cell: Optional[int] = None
    new_shards: Tuple[int, ...] = ()
    replicas: Dict[int, int] = field(default_factory=dict)
    skew: float = 1.0


class ShardRebalancer:
    """Policy loop pairing a router's load tracker with its re-cut API.

    ``engine`` is optional: when given (a
    :class:`~repro.query.sharded.ShardedQueryEngine`), replica decisions
    are installed on it directly; otherwise they are only returned in
    the action for the caller to apply.

    ``split_threshold`` — a shard is *hot* when its EWMA load exceeds
    this multiple of the mean active-shard load.  ``merge_threshold`` —
    a split cell re-merges when every tile is below this multiple.
    ``min_rows_to_split`` keeps the policy from thrashing tiny shards
    whose absolute cost is noise.  ``max_replicas`` caps the replica
    fan-out of a single hot shard.
    """

    def __init__(
        self,
        router,
        engine=None,
        split_threshold: float = 2.0,
        merge_threshold: float = 0.5,
        max_replicas: int = 4,
        min_rows_to_split: int = 64,
    ) -> None:
        if split_threshold <= 1.0:
            raise ValueError("split_threshold must exceed 1.0")
        if not 0.0 < merge_threshold < 1.0:
            raise ValueError("merge_threshold must be in (0, 1)")
        self.router = router
        self.engine = engine
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold
        self.max_replicas = max_replicas
        self.min_rows_to_split = min_rows_to_split
        #: Every action taken, in order (``"none"`` steps excluded).
        self.history: List[RebalanceAction] = []

    # -- observation ---------------------------------------------------------

    def _active_loads(self) -> Dict[int, float]:
        """EWMA load per *active* shard (hole slots carry no region and
        must not drag the mean toward zero after a merge)."""
        loads = self.router.load.loads()
        grid = self.router.grid
        if isinstance(grid, RefinedRegionGrid):
            # active_shards is a boolean slot mask (holes are False).
            active = [int(s) for s in np.flatnonzero(grid.active_shards)]
        else:
            active = list(range(self.router.n_shards))
        return {s: loads[s] for s in active if s < len(loads)}

    def skew(self) -> float:
        """Max/mean load ratio across active shards (1.0 = balanced)."""
        return skew_coefficient(list(self._active_loads().values()))

    # -- the policy step -----------------------------------------------------

    def step(self) -> RebalanceAction:
        """Observe, take at most one action, decay the tracker."""
        action = self._decide()
        if action.kind != "none":
            self.history.append(action)
        self.router.load.decay()
        return action

    def run(self, max_steps: int = 8) -> List[RebalanceAction]:
        """Step until quiescent (or ``max_steps``); returns actions taken."""
        taken: List[RebalanceAction] = []
        for _ in range(max_steps):
            action = self.step()
            if action.kind == "none":
                break
            taken.append(action)
        return taken

    def _decide(self) -> RebalanceAction:
        loads = self._active_loads()
        skew = skew_coefficient(list(loads.values()))
        mean = sum(loads.values()) / len(loads) if loads else 0.0
        if mean <= 0.0:
            return RebalanceAction("none", skew=skew)
        counts = self.router.shard_counts()
        grid = self.router.grid
        refined = grid if isinstance(grid, RefinedRegionGrid) else None

        # Hottest actionable shard first: splitting beats replicating
        # because it also shrinks each scan and tightens the sketches.
        for s, load in sorted(loads.items(), key=lambda kv: (-kv[1], kv[0])):
            if load <= self.split_threshold * mean:
                break
            cell = refined.cell_of_shard(s) if refined is not None else s
            split = refined is not None and refined.is_split(cell)
            if not split and counts[s] >= self.min_rows_to_split:
                new_ids = self.router.split_shard(s)
                return RebalanceAction(
                    "split", shard=s, cell=cell,
                    new_shards=tuple(new_ids), skew=skew,
                )
            if split or counts[s] >= self.min_rows_to_split:
                # Refinement limit reached (or rows too clustered to
                # re-cut profitably): serve the shard from replicas.
                want = min(self.max_replicas, max(2, round(load / mean)))
                plan = dict(self.engine.replicas) if self.engine is not None else {}
                if plan.get(s, 0) >= want:
                    continue  # already provisioned; look further down
                plan[s] = want
                if self.engine is not None:
                    self.engine.set_replicas(plan)
                return RebalanceAction(
                    "replicas", shard=s, replicas=plan, skew=skew
                )

        # No hot shard: retire refinement whose tiles all went cold.
        if refined is not None:
            for cell, ids in enumerate(refined.cell_shards):
                if len(ids) < 2:
                    continue
                if all(
                    loads.get(t, 0.0) < self.merge_threshold * mean for t in ids
                ):
                    keep = self.router.merge_cell(cell)
                    if self.engine is not None:
                        plan = self.engine.replicas
                        if any(t in plan for t in ids):
                            for t in ids:
                                plan.pop(t, None)
                            self.engine.set_replicas(plan)
                    return RebalanceAction(
                        "merge", shard=keep, cell=cell, skew=skew
                    )
        return RebalanceAction("none", skew=skew)
