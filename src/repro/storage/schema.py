"""Table schemas for the embedded store.

A :class:`Schema` is an ordered list of typed columns.  Two column types
cover everything EnviroMeter stores: ``FLOAT64`` for measurements and
timestamps, ``BYTES`` for serialized model blobs in the ``model_cover``
table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class ColumnType(enum.Enum):
    """Physical type of a stored column."""

    FLOAT64 = "float64"
    INT64 = "int64"
    BYTES = "bytes"


@dataclass(frozen=True)
class Column:
    """One named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered, duplicate-free collection of columns."""

    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in schema: {names}")
        if not self.columns:
            raise ValueError("schema needs at least one column")

    @classmethod
    def of(cls, *specs: Tuple[str, ColumnType]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls(tuple(Column(name, ctype) for name, ctype in specs))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def has_bytes(self) -> bool:
        """True when any column stores raw ``bytes`` (no bulk fast path)."""
        return any(c.ctype is ColumnType.BYTES for c in self.columns)

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(f"no column named {name!r}")

    def index_of(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise KeyError(f"no column named {name!r}")

    def __len__(self) -> int:
        return len(self.columns)


RAW_TUPLES_SCHEMA = Schema.of(
    ("t", ColumnType.FLOAT64),
    ("x", ColumnType.FLOAT64),
    ("y", ColumnType.FLOAT64),
    ("s", ColumnType.FLOAT64),
)
"""Schema of the ``raw_tuples`` table (Figure 1)."""

MODEL_COVER_SCHEMA = Schema.of(
    ("window_c", ColumnType.INT64),
    ("valid_until", ColumnType.FLOAT64),
    ("cover_blob", ColumnType.BYTES),
)
"""Schema of the ``model_cover`` table: one serialized cover per window."""
