"""Durable tiered shard router: segments + WAL + bounded resident set.

:class:`TieredShardRouter` speaks the same protocol as
:class:`~repro.storage.shards.ShardRouter` — the query pipeline binds it
through the identical :class:`~repro.query.pipeline.binding.RouterBinding`
— but its storage is tiered:

* **Hot tail** — rows of still-open global windows live in memory only
  (plus the WAL for crash safety), exactly as routed.
* **Sealed segments** — the moment a global window seals, each shard's
  slice is frozen into an immutable, checksummed segment file
  (:mod:`repro.storage.segments`) and the manifest is atomically
  updated.  Sealed slices then live in a bounded LRU of resident
  windows; cold ones are evicted and transparently faulted back in when
  a plan's ``slice_for`` needs their rows.
* **Always-resident metadata** — per-(shard, window) stamps, row counts
  and zone-map sketches, the global window cuts, and the first-tuple
  time per window.  Everything a plan consults *before* touching rows —
  ``windows_for_times``, geometry pruning, sketch pruning, pruned-op
  records — reads only this metadata, so pruning never faults a window
  in just to skip it.

**The tier is invisible to plans.**  Given the same ingest sequence, a
tiered router and a plain :class:`ShardRouter` resolve every
``(shard, window)`` to bit-identical rows, gids and sketches — segment
round-trips preserve the float64 columns exactly, the cuts and routing
are recomputed by the same code, and ``windows_for_times`` is answered
from the first-tuple-time table, which is provably equal to the plain
router's rank computation for a time-sorted stream (the append-only
sensing contract): the window of time ``t`` is the largest ``c`` with
``first_t[c] <= t``, clamped to the started windows.

Durability protocol (see ``docs/architecture.md``):

1. ``ingest`` appends the *global* batch to the WAL and fsyncs **before**
   any in-memory state changes — an acknowledged batch survives a crash.
2. When windows seal, their per-shard segments are written (each one
   atomic), **then** the manifest is atomically replaced, **then** the
   WAL is checkpointed down to the unsealed tail.  A crash between any
   two steps loses nothing: segments not yet in the manifest are
   re-written deterministically from the WAL on recovery, and WAL
   records overlapping sealed rows are skipped by their absolute start
   row.
3. Recovery (construction over an existing directory) adopts sealed
   metadata from the manifest *without reading any segment payload*,
   replays the WAL tail through the normal routing path, and completes
   any seal the crash interrupted.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import window_boundaries_in
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.storage import fsio
from repro.storage.load import ShardLoadStat, ShardLoadTracker, skew_coefficient
from repro.storage.segments import (
    read_segment,
    segment_filename,
    write_segment,
)
from repro.storage.sketch import WindowSketch
from repro.storage.wal import WriteAheadLog, replay_wal

_MANIFEST = "MANIFEST.json"
_WAL = "wal.log"
_SEGMENT_DIR = "segments"
_MANIFEST_FORMAT = 1

_SKETCH_FIELDS = (
    "min_x", "max_x", "min_y", "max_y", "min_t", "max_t", "min_s", "max_s",
)


def _sketch_to_json(sketch: WindowSketch) -> List[float]:
    return [getattr(sketch, f) for f in _SKETCH_FIELDS]


def _sketch_from_json(n_rows: int, bounds: List[float]) -> WindowSketch:
    return WindowSketch(n_rows, *bounds) if n_rows else WindowSketch.EMPTY


class TieredShardRouter:
    """Region-sharded router over a durable segment + WAL tier.

    Drop-in for :class:`~repro.storage.shards.ShardRouter` on the query
    path (``RouterBinding``/``ShardedQueryEngine`` work unchanged); the
    process-parallel executor detects ``prefix_exportable = False`` and
    falls back to in-process execution, which is byte-identical.

    ``memory_windows`` bounds the number of *sealed* ``(shard, window)``
    slices resident at once (``None`` = unbounded: the tier is then a
    write-through archive).  The open tail is always resident — it is
    the working set ingest appends to.  Request-scoped bindings may pin
    slices past an eviction; the cap bounds the router's cache, and
    evicted arrays die with the binding that pinned them.
    """

    #: The shared-memory export path needs a contiguous in-memory prefix
    #: per shard, which a tiered store deliberately does not keep.
    prefix_exportable = False

    def __init__(
        self,
        grid: RegionGrid,
        h: int = 240,
        *,
        data_dir: Union[str, Path],
        memory_windows: Optional[int] = None,
        wal_sync: bool = True,
        compress: bool = True,
    ) -> None:
        if h <= 0:
            raise ValueError("window size h must be positive")
        if memory_windows is not None and memory_windows < 1:
            raise ValueError("memory_windows must be at least 1 (or None)")
        self.grid = grid
        self.h = h
        self.data_dir = Path(data_dir)
        self.memory_windows = memory_windows
        self.compress = compress
        self._segment_dir = self.data_dir / _SEGMENT_DIR
        self._segment_dir.mkdir(parents=True, exist_ok=True)

        n = grid.n_regions
        self._lock = threading.RLock()
        self._global_rows = 0
        self._epoch = 0
        self._sealed_c = 0  # windows durably sealed (segments + manifest)
        self._cuts: List[List[int]] = [[0] for _ in range(n)]
        self._shard_rows = [0] * n
        self._window_epochs: List[Dict[int, int]] = [{} for _ in range(n)]
        self._sketches: List[Dict[int, WindowSketch]] = [{} for _ in range(n)]
        #: first_ts[c] = timestamp of global window c's first tuple.
        self._first_ts: List[float] = []
        #: Open-tail rows per shard: list of (slice, gids) in arrival order.
        self._tail_parts: List[List[Tuple[TupleBatch, np.ndarray]]] = [
            [] for _ in range(n)
        ]
        self._tail_cache: List[Optional[Tuple[TupleBatch, np.ndarray]]] = [None] * n
        #: Sealed rows per shard (tail base: shard-local rows below it are
        #: in segments, at or above it in the tail).
        self._tail_base = [0] * n
        #: Resident sealed slices, LRU order: (shard, c) -> (batch, gids).
        self._resident: "OrderedDict[Tuple[int, int], Tuple[TupleBatch, np.ndarray]]" = OrderedDict()
        #: (shard, c) -> segment file name, for every sealed slice with rows.
        self._segment_files: Dict[Tuple[int, int], str] = {}
        # Tier observability (all monotone counters except resident/peak).
        self.faults = 0
        self.evictions = 0
        self.segments_written = 0
        self.peak_resident = 0
        # Per-shard load statistics (same surface as ShardRouter's).
        self.load = ShardLoadTracker(n)

        manifest = self._load_manifest()
        if manifest is not None:
            self._validate_manifest(manifest)
            self._adopt_manifest(manifest)
        self._wal = WriteAheadLog(self.data_dir / _WAL, sync=wal_sync)
        self._recover_wal()
        self._seal_complete_windows()
        if manifest is None:
            # Establish the manifest at creation so the directory is
            # self-describing from the first byte (`open` needs no args).
            self._write_manifest()

    # -- construction over an existing directory ---------------------------

    @classmethod
    def open(
        cls,
        data_dir: Union[str, Path],
        *,
        memory_windows: Optional[int] = None,
        wal_sync: bool = True,
        compress: bool = True,
    ) -> "TieredShardRouter":
        """Reopen a data directory, reconstructing grid and ``h`` from
        its manifest (and recovering WAL/segment state on the way)."""
        manifest_path = Path(data_dir) / _MANIFEST
        if not manifest_path.exists():
            raise ValueError(
                f"{manifest_path}: no manifest — not a tiered data directory"
            )
        try:
            doc = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise ValueError(
                f"{manifest_path}: corrupt manifest ({exc})"
            ) from None
        g = doc["grid"]
        grid = RegionGrid(
            BoundingBox(g["min_x"], g["min_y"], g["max_x"], g["max_y"]),
            nx=int(g["nx"]),
            ny=int(g["ny"]),
        )
        return cls(
            grid,
            h=int(doc["h"]),
            data_dir=data_dir,
            memory_windows=memory_windows,
            wal_sync=wal_sync,
            compress=compress,
        )

    def _load_manifest(self) -> Optional[dict]:
        path = self.data_dir / _MANIFEST
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except ValueError as exc:
            raise ValueError(f"{path}: corrupt manifest ({exc})") from None
        if doc.get("format") != _MANIFEST_FORMAT:
            raise ValueError(
                f"{path}: unsupported manifest format {doc.get('format')!r}"
            )
        return doc

    def _validate_manifest(self, doc: dict) -> None:
        if int(doc["h"]) != self.h:
            raise ValueError(
                f"data directory was written with h={doc['h']}, "
                f"router configured with h={self.h}"
            )
        g = doc["grid"]
        b = self.grid.bounds
        same = (
            int(g["nx"]) == self.grid.nx
            and int(g["ny"]) == self.grid.ny
            and g["min_x"] == b.min_x
            and g["min_y"] == b.min_y
            and g["max_x"] == b.max_x
            and g["max_y"] == b.max_y
        )
        if not same:
            raise ValueError(
                "data directory was written with a different region grid; "
                "reopen with TieredShardRouter.open() or the original grid"
            )

    def _adopt_manifest(self, doc: dict) -> None:
        """Adopt sealed-window metadata — no segment payload is read."""
        sealed = int(doc["sealed_windows"])
        windows = sorted(doc["windows"], key=lambda w: int(w["c"]))
        if [int(w["c"]) for w in windows] != list(range(sealed)):
            raise ValueError(
                f"{self.data_dir / _MANIFEST}: manifest window list is not "
                f"the contiguous range 0..{sealed - 1}"
            )
        for entry in windows:
            c = int(entry["c"])
            self._first_ts.append(float(entry["first_t"]))
            rows_by_shard = [0] * self.n_shards
            for shard_entry in entry["shards"]:
                s = int(shard_entry["s"])
                rows = int(shard_entry["rows"])
                rows_by_shard[s] = rows
                self._window_epochs[s][c] = int(shard_entry["stamp"])
                self._sketches[s][c] = _sketch_from_json(
                    rows, shard_entry["sketch"]
                )
                self._segment_files[(s, c)] = shard_entry["file"]
            for s in range(self.n_shards):
                self._cuts[s].append(self._cuts[s][-1] + rows_by_shard[s])
        self._sealed_c = sealed
        self._global_rows = sealed * self.h
        for s in range(self.n_shards):
            self._shard_rows[s] = self._cuts[s][-1]
            self._tail_base[s] = self._cuts[s][-1]
        stamps = [
            stamp for per in self._window_epochs for stamp in per.values()
        ]
        self._epoch = max(stamps, default=0)

    def _recover_wal(self) -> None:
        """Replay the WAL tail through the normal routing path.

        Records are skipped up to the sealed boundary (a crash between
        the manifest update and the WAL checkpoint leaves covered rows
        in the log); the remainder re-ingests in order, deterministically
        rebuilding tail rows, cuts, gids, epochs and sketches.
        """
        replay = replay_wal(self.data_dir / _WAL)
        for start_row, batch in replay.records:
            expected = self._global_rows
            if start_row > expected:
                break  # gap: nothing after it can be trusted
            skip = expected - start_row
            if skip >= len(batch):
                continue  # fully covered by sealed segments
            self._ingest_rows(batch.slice(skip, len(batch)))

    # -- topology ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.grid.n_regions

    def global_count(self) -> int:
        return self._global_rows

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def layout_epoch(self) -> int:
        """Always 0: the durable tier's layout is fixed at creation (the
        manifest bakes the grid in), so no binding can ever go stale."""
        return 0

    def shard_counts(self) -> List[int]:
        return list(self._shard_rows)

    def shard_load_stats(self) -> List[ShardLoadStat]:
        """Per-shard load counters (same surface as the in-memory router)."""
        return self.load.snapshot()

    def load_skew(self) -> float:
        """Max/mean skew of per-shard tuple counts (1.0 = balanced)."""
        return skew_coefficient(self.shard_counts())

    def split_shard(self, s: int, sx: int = 2, sy: int = 2) -> List[int]:
        """Rebalancing a durable tier is not supported: sealed segment
        files, the WAL and the manifest all encode the creation-time
        layout, and re-cutting them in place cannot be made crash-safe
        with the current segment format (see ``storage/README.md``)."""
        raise NotImplementedError(
            "rebalancing a durable tier is not supported; "
            "re-ingest into a freshly laid-out ShardRouter instead"
        )

    def merge_cell(self, cell: int) -> int:
        """See :meth:`split_shard` — durable tiers keep a fixed layout."""
        raise NotImplementedError(
            "rebalancing a durable tier is not supported; "
            "re-ingest into a freshly laid-out ShardRouter instead"
        )

    def global_window_count(self) -> int:
        return (self._global_rows + self.h - 1) // self.h

    def sealed_window_count(self) -> int:
        """Windows durably frozen into segment files."""
        return self._sealed_c

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "TieredShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest ------------------------------------------------------------

    def route(self, batch: TupleBatch) -> np.ndarray:
        return self.grid.shards_of(batch.x, batch.y)

    def ingest(self, batch: TupleBatch) -> List[int]:
        """Durably append a batch (WAL first), then seal what completed."""
        n = len(batch)
        if not n:
            return [0] * self.n_shards
        with self._lock:
            self._wal.append(self._global_rows, batch)
            delivered = self._ingest_rows(batch)
            self._seal_complete_windows()
        return delivered

    def _ingest_rows(self, batch: TupleBatch) -> List[int]:
        """In-memory ingest, mirroring :meth:`ShardRouter.ingest` exactly
        (same routing, cut, gid, epoch and sketch updates) with rows
        landing in the per-shard tails."""
        n = len(batch)
        delivered = [0] * self.n_shards
        owners = self.route(batch)
        start = self._global_rows
        boundaries = window_boundaries_in(start, n, self.h)
        prior = list(self._shard_rows)
        gids = np.arange(start, start + n, dtype=np.int64)
        self._epoch += 1
        # First-tuple time of every window starting inside this batch —
        # the always-resident table windows_for_times is answered from.
        c0 = 0 if start == 0 else -(-start // self.h)
        c1 = (start + n - 1) // self.h
        for c in range(c0, c1 + 1):
            self._first_ts.append(float(batch.t[c * self.h - start]))
        for s in np.unique(owners):
            s = int(s)
            member = owners == s
            sub = batch.select_mask(member)
            self._tail_parts[s].append((sub, gids[member]))
            self._tail_cache[s] = None
            delivered[s] = len(sub)
            self.load.record_ingest(s, len(sub))
            self._shard_rows[s] += len(sub)
            wins = gids[member] // self.h
            for c in np.unique(wins):
                c = int(c)
                self._window_epochs[s][c] = self._epoch
                in_c = wins == c
                self._sketches[s][c] = self._sketches[s].get(
                    c, WindowSketch.EMPTY
                ).extended(sub.t[in_c], sub.x[in_c], sub.y[in_c], sub.s[in_c])
        if len(boundaries):
            local_b = np.asarray(boundaries, dtype=np.int64) - start
            for s in range(self.n_shards):
                if not delivered[s]:
                    self._cuts[s].extend([prior[s]] * len(local_b))
                    continue
                positions = np.flatnonzero(owners == s)
                cuts = prior[s] + np.searchsorted(positions, local_b)
                self._cuts[s].extend(int(cut) for cut in cuts)
        self._global_rows += n
        return delivered

    # -- sealing -----------------------------------------------------------

    def _seal_complete_windows(self) -> None:
        """Freeze every complete-but-unsealed window to the durable tier.

        Order is what makes this crash-safe: per-shard segments first
        (each atomic), then one atomic manifest replace that commits all
        of them, then the WAL checkpoint.  Segment content is a pure
        function of the stream prefix, so re-running an interrupted seal
        after recovery rewrites byte-identical files.
        """
        target = self._global_rows // self.h
        if target <= self._sealed_c:
            return
        sealed_slices: List[Tuple[int, int, TupleBatch, np.ndarray]] = []
        for c in range(self._sealed_c, target):
            for s in range(self.n_shards):
                sub, sgids = self._tail_slice(s, c)
                if not len(sub):
                    continue
                name = segment_filename(s, c)
                write_segment(
                    self._segment_dir / name,
                    shard=s,
                    window_c=c,
                    h=self.h,
                    stamp=self._window_epochs[s][c],
                    batch=sub,
                    gids=sgids,
                    sketch=self._sketches[s][c],
                    compress=self.compress,
                )
                self.segments_written += 1
                self._segment_files[(s, c)] = name
                # Own the rows (a copy) so the resident entry does not
                # pin the whole superseded tail buffer alive.
                sealed_slices.append(
                    (s, c, TupleBatch(*(col.copy() for col in (sub.t, sub.x, sub.y, sub.s))), sgids.copy())
                )
        self._sealed_c = target
        self._write_manifest()
        # Drop sealed rows from the tail fronts.
        for s in range(self.n_shards):
            base = self._cut_at(s, target)
            tail_batch, tail_gids = self._tail_concat(s)
            keep = base - self._tail_base[s]
            self._tail_parts[s] = (
                [(tail_batch.slice(keep, len(tail_batch)), tail_gids[keep:])]
                if keep < len(tail_batch)
                else []
            )
            self._tail_cache[s] = None
            self._tail_base[s] = base
        # Freshly sealed slices enter the resident set (LRU end): the
        # just-sealed window is the likeliest to be queried next.
        for s, c, sub, sgids in sealed_slices:
            self._resident_insert((s, c), (sub, sgids))
        # Checkpoint the WAL down to the unsealed tail, in global order.
        self._wal.checkpoint(target * self.h, self._global_tail())

    def _global_tail(self) -> TupleBatch:
        """The unsealed rows in global stream order (gid-merged)."""
        parts = [self._tail_concat(s) for s in range(self.n_shards)]
        batches = [p[0] for p in parts if len(p[0])]
        gid_parts = [p[1] for p in parts if len(p[1])]
        if not batches:
            return TupleBatch.empty()
        gids = np.concatenate(gid_parts)
        order = np.argsort(gids, kind="stable")
        merged = batches[0]
        for extra in batches[1:]:
            merged = merged.concat(extra)
        return merged.take(order)

    def _write_manifest(self) -> None:
        b = self.grid.bounds
        windows = []
        for c in range(self._sealed_c):
            shards = []
            for s in range(self.n_shards):
                key = (s, c)
                if key not in self._segment_files:
                    continue
                sketch = self._sketches[s][c]
                shards.append(
                    {
                        "s": s,
                        "rows": sketch.n_rows,
                        "stamp": self._window_epochs[s][c],
                        "file": self._segment_files[key],
                        "sketch": _sketch_to_json(sketch),
                    }
                )
            windows.append(
                {"c": c, "first_t": self._first_ts[c], "shards": shards}
            )
        doc = {
            "format": _MANIFEST_FORMAT,
            "h": self.h,
            "grid": {
                "min_x": b.min_x,
                "min_y": b.min_y,
                "max_x": b.max_x,
                "max_y": b.max_y,
                "nx": self.grid.nx,
                "ny": self.grid.ny,
            },
            "sealed_windows": self._sealed_c,
            "windows": windows,
        }
        fsio.atomic_write_bytes(
            self.data_dir / _MANIFEST,
            (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"),
        )

    # -- resident-set management -------------------------------------------

    def _resident_insert(
        self, key: Tuple[int, int], value: Tuple[TupleBatch, np.ndarray]
    ) -> None:
        self._resident[key] = value
        self._resident.move_to_end(key)
        if self.memory_windows is not None:
            while len(self._resident) > self.memory_windows:
                self._resident.popitem(last=False)
                self.evictions += 1
        self.peak_resident = max(self.peak_resident, len(self._resident))

    def _sealed_slice(self, s: int, c: int) -> Tuple[TupleBatch, np.ndarray]:
        """The (batch, gids) of a sealed slice, faulting it in on a miss."""
        key = (s, c)
        cached = self._resident.get(key)
        if cached is not None:
            self._resident.move_to_end(key)
            return cached
        name = self._segment_files.get(key)
        if name is None:  # the shard owned no rows of this window
            return TupleBatch.empty(), np.empty(0, dtype=np.int64)
        segment = read_segment(self._segment_dir / name)
        self.faults += 1
        value = (segment.batch(), segment.gids())
        self._resident_insert(key, value)
        return value

    def resident_window_count(self) -> int:
        """Sealed ``(shard, window)`` slices currently resident."""
        return len(self._resident)

    def tier_stats(self) -> Dict[str, int]:
        """Observability counters for tests, benchmarks and the CLI."""
        return {
            "sealed_windows": self._sealed_c,
            "resident_windows": len(self._resident),
            "peak_resident": self.peak_resident,
            "memory_windows": self.memory_windows or 0,
            "faults": self.faults,
            "evictions": self.evictions,
            "segments_written": self.segments_written,
            "wal_appends": self._wal.appends,
            "wal_checkpoints": self._wal.checkpoints,
        }

    # -- window access (the RouterBinding protocol) ------------------------

    def _check_window(self, c: int) -> int:
        c = int(c)
        if c < 0:
            raise ValueError("window index c must be non-negative")
        if c >= self.global_window_count():
            raise IndexError(
                f"global window {c} (h={self.h}) starts past the stream end"
            )
        return c

    def _cut_at(self, s: int, c: int) -> int:
        cuts = self._cuts[s]
        return cuts[c] if c < len(cuts) else self._shard_rows[s]

    def _tail_concat(self, s: int) -> Tuple[TupleBatch, np.ndarray]:
        cached = self._tail_cache[s]
        if cached is None:
            parts = self._tail_parts[s]
            if not parts:
                cached = (TupleBatch.empty(), np.empty(0, dtype=np.int64))
            elif len(parts) == 1:
                cached = parts[0]
            else:
                merged = parts[0][0]
                for sub, _ in parts[1:]:
                    merged = merged.concat(sub)
                cached = (merged, np.concatenate([g for _, g in parts]))
            self._tail_cache[s] = cached
        return cached

    def _tail_slice(self, s: int, c: int) -> Tuple[TupleBatch, np.ndarray]:
        """Rows of global window ``c`` in shard ``s``'s open tail."""
        start = self._cut_at(s, c) - self._tail_base[s]
        stop = self._cut_at(s, c + 1) - self._tail_base[s]
        batch, gids = self._tail_concat(s)
        return batch.slice(start, stop), gids[start:stop]

    def _window_slice(self, s: int, c: int) -> Tuple[TupleBatch, np.ndarray]:
        if c < self._sealed_c:
            return self._sealed_slice(s, c)
        return self._tail_slice(s, c)

    def shard_window(self, s: int, c: int) -> TupleBatch:
        with self._lock:
            return self._window_slice(s, self._check_window(c))[0]

    def shard_window_gids(self, s: int, c: int) -> np.ndarray:
        with self._lock:
            return self._window_slice(s, self._check_window(c))[1]

    def shard_windows(self, c: int) -> List[TupleBatch]:
        return [self.shard_window(s, c) for s in range(self.n_shards)]

    def shard_window_epoch(self, s: int, c: int) -> int:
        return self._window_epochs[s].get(int(c), 0)

    def shard_window_sketch(self, s: int, c: int) -> WindowSketch:
        return self._sketches[s].get(int(c), WindowSketch.EMPTY)

    def frozen_window_sketch(self, s: int, c: int) -> Optional[WindowSketch]:
        """The immutable sketch of a *sealed* window, else ``None``.

        Sealed sketches are always resident (adopted from the manifest
        or maintained at ingest), so a pruning pass can consult them
        without faulting the slice in — the cheap path the binding
        prefers.
        """
        c = int(c)
        if c < self._global_rows // self.h:
            return self._sketches[s].get(c, WindowSketch.EMPTY)
        return None

    def window_stats(self, c: int) -> List[tuple]:
        """Unlocked ``(stamp, n_rows, read_epoch)`` display estimates per
        shard (see :meth:`ShardRouter.window_stats`)."""
        c = int(c)
        stats = []
        for s in range(self.n_shards):
            read_epoch = self._epoch
            sketch = self._sketches[s].get(c)
            stats.append(
                (
                    self._window_epochs[s].get(c, 0),
                    sketch.n_rows if sketch is not None else 0,
                    read_epoch,
                )
            )
        return stats

    def snapshot_window(self, s: int, c: int):
        with self._lock:
            c = self._check_window(c)
            batch, gids = self._window_slice(s, c)
            return self.shard_window_epoch(s, c), batch, gids

    def snapshot_window_sketch(self, s: int, c: int):
        with self._lock:
            c = self._check_window(c)
            batch, gids = self._window_slice(s, c)
            return (
                self.shard_window_epoch(s, c),
                batch,
                gids,
                self.shard_window_sketch(s, c),
            )

    def windows_for_times(self, ts) -> np.ndarray:
        """Global window per query timestamp, from resident metadata only.

        For a time-sorted global stream, the responsible window of time
        ``t`` — the plain router's ``(rank(t) - 1) // h`` — equals the
        largest ``c`` whose first tuple is at or before ``t``: the
        first tuple of window ``c`` is global row ``c*h``, so
        ``first_t[c] <= t`` iff ``rank(t) > c*h``.  One binary search
        over the O(#windows) first-times table; no window rows touched.
        """
        ts = np.asarray(ts, dtype=np.float64)
        if not self._global_rows:
            raise RuntimeError("router has no data")
        first = np.asarray(self._first_ts, dtype=np.float64)
        pos = np.searchsorted(first, ts, side="right") - 1
        limit = max(self.global_window_count() - 1, 0)
        return np.minimum(np.maximum(pos, 0), limit)

    def window_for_time(self, t: float) -> int:
        return int(self.windows_for_times((t,))[0])

    def cuts(self, s: int) -> List[int]:
        return list(self._cuts[s])

    # -- maintenance -------------------------------------------------------

    def compact(self, verify: bool = False) -> Dict[str, int]:
        """Tidy the data directory: checkpoint the WAL, drop orphan
        segment files (left by a crash between segment writes and the
        manifest commit, and since re-written under their manifest
        names), remove stray temp files.  ``verify=True`` additionally
        re-reads every live segment, checking all group checksums.

        Returns counters: ``{"orphans_removed", "tmp_removed",
        "segments_verified"}``.  Raises
        :class:`~repro.storage.segments.SegmentCorrupt` if verification
        fails.
        """
        removed = tmp_removed = verified = 0
        with self._lock:
            live = set(self._segment_files.values())
            for path in sorted(self._segment_dir.iterdir()):
                if path.name.endswith(".tmp"):
                    path.unlink()
                    tmp_removed += 1
                elif path.suffix == ".seg" and path.name not in live:
                    path.unlink()
                    removed += 1
            if verify:
                for name in sorted(live):
                    read_segment(self._segment_dir / name)
                    verified += 1
            self._wal.checkpoint(self._sealed_c * self.h, self._global_tail())
        return {
            "orphans_removed": removed,
            "tmp_removed": tmp_removed,
            "segments_verified": verified,
        }
