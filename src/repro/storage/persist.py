"""Binary persistence for the embedded database.

A simple length-prefixed container format (magic, version, partition
metadata, table count, then per table: name, schema, column payloads).
Numeric columns are stored as raw little-endian arrays; byte columns as
length-prefixed blobs.  The format is self-describing enough to
round-trip any schema built from :class:`~repro.storage.schema.ColumnType`.

Version 2 adds the window-partitioned layout: the ``raw_tuples``
partition size (window boundaries are derived as multiples of it) and
the per-window latest-cover index, so a reloaded database answers
``cover_blob_for_window`` and ``window_view`` exactly as the saved one
did.  Version 1 files still load; their cover index is rebuilt by one
scan of ``model_cover``.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

import numpy as np

from repro.storage.engine import Database
from repro.storage.schema import Column, ColumnType, Schema

_MAGIC = b"EMDB"
_VERSION = 2

_CTYPE_CODES = {ColumnType.FLOAT64: 0, ColumnType.INT64: 1, ColumnType.BYTES: 2}
_CODE_CTYPES = {v: k for k, v in _CTYPE_CODES.items()}
_NUMPY_DTYPES = {ColumnType.FLOAT64: "<f8", ColumnType.INT64: "<i8"}


def _write_str(f: BinaryIO, s: str) -> None:
    data = s.encode("utf-8")
    f.write(struct.pack("<I", len(data)))
    f.write(data)


def _read_str(f: BinaryIO) -> str:
    (n,) = struct.unpack("<I", _read_exact(f, 4))
    return _read_exact(f, n).decode("utf-8")


def _read_exact(f: BinaryIO, n: int) -> bytes:
    data = f.read(n)
    if len(data) != n:
        raise ValueError("truncated database file")
    return data


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Serialize every table of ``db`` to ``path``."""
    path = Path(path)
    buf = io.BytesIO()
    buf.write(_MAGIC)
    buf.write(struct.pack("<I", _VERSION))
    # Partition metadata: window size (0 = unpartitioned) and the
    # per-window latest-cover index.
    buf.write(struct.pack("<Q", db.partition_h or 0))
    cover_index = db.cover_index()
    buf.write(struct.pack("<I", len(cover_index)))
    for window_c in sorted(cover_index):
        buf.write(struct.pack("<qQ", window_c, cover_index[window_c]))
    names = db.table_names()
    buf.write(struct.pack("<I", len(names)))
    for name in names:
        table = db.table(name)
        _write_str(buf, name)
        buf.write(struct.pack("<I", len(table.schema)))
        for col in table.schema.columns:
            _write_str(buf, col.name)
            buf.write(struct.pack("<B", _CTYPE_CODES[col.ctype]))
        buf.write(struct.pack("<Q", len(table)))
        for col in table.schema.columns:
            snapshot = table.column(col.name)
            if col.ctype is ColumnType.BYTES:
                for blob in snapshot:
                    buf.write(struct.pack("<I", len(blob)))
                    buf.write(blob)
            else:
                arr = np.asarray(snapshot, dtype=_NUMPY_DTYPES[col.ctype])
                buf.write(arr.tobytes())
    path.write_bytes(buf.getvalue())


def load_database(path: Union[str, Path]) -> Database:
    """Load a database written by :func:`save_database`."""
    path = Path(path)
    with path.open("rb") as f:
        if _read_exact(f, 4) != _MAGIC:
            raise ValueError(f"{path}: not an EnviroMeter database file")
        (version,) = struct.unpack("<I", _read_exact(f, 4))
        if version not in (1, _VERSION):
            raise ValueError(f"{path}: unsupported format version {version}")
        partition_h = None
        cover_index: dict = {}
        if version >= 2:
            (h,) = struct.unpack("<Q", _read_exact(f, 8))
            partition_h = int(h) or None
            (n_entries,) = struct.unpack("<I", _read_exact(f, 4))
            for _ in range(n_entries):
                window_c, rid = struct.unpack("<qQ", _read_exact(f, 16))
                cover_index[int(window_c)] = int(rid)
        (n_tables,) = struct.unpack("<I", _read_exact(f, 4))
        db = Database()
        for _ in range(n_tables):
            name = _read_str(f)
            (n_cols,) = struct.unpack("<I", _read_exact(f, 4))
            cols = []
            for _ in range(n_cols):
                col_name = _read_str(f)
                (code,) = struct.unpack("<B", _read_exact(f, 1))
                cols.append(Column(col_name, _CODE_CTYPES[code]))
            schema = Schema(tuple(cols))
            table = db.create_table(name, schema)
            (n_rows,) = struct.unpack("<Q", _read_exact(f, 8))
            columns: dict = {}
            for col in schema.columns:
                if col.ctype is ColumnType.BYTES:
                    blobs = []
                    for _ in range(n_rows):
                        (blen,) = struct.unpack("<I", _read_exact(f, 4))
                        blobs.append(_read_exact(f, blen))
                    columns[col.name] = blobs
                else:
                    raw = _read_exact(f, 8 * n_rows)
                    columns[col.name] = np.frombuffer(raw, dtype=_NUMPY_DTYPES[col.ctype])
            if schema.has_bytes:
                # Reassemble rows in insertion order (blob tables are small).
                for i in range(n_rows):
                    table.insert(tuple(columns[c.name][i] for c in schema.columns))
            elif n_rows:
                # Numeric-only tables load as one vectorized fill per column.
                table.insert_columns(**columns)
        if version >= 2:
            db._restore_partition_state(partition_h, cover_index)
        else:
            db._rebuild_cover_index()
        return db
