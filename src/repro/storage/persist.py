"""Binary persistence for the embedded database.

A simple length-prefixed container format (magic, version, partition
metadata, table count, then per table: name, schema, column payloads).
Numeric columns are stored as raw little-endian arrays; byte columns as
length-prefixed blobs.  The format is self-describing enough to
round-trip any schema built from :class:`~repro.storage.schema.ColumnType`.

Version 2 adds the window-partitioned layout: the ``raw_tuples``
partition size (window boundaries are derived as multiples of it) and
the per-window latest-cover index, so a reloaded database answers
``cover_blob_for_window`` and ``window_view`` exactly as the saved one
did.  Version 1 files still load; their cover index is rebuilt by one
scan of ``model_cover``.

Durability contract (see ``README.md`` in this package):

* **Snapshot-consistent** — the whole save serialises from one coherent
  capture taken under the database lock: an epoch-stamped
  :class:`~repro.storage.engine.StorageSnapshot` pins the raw-tuple
  prefix, every other table contributes a single ``scan()`` (all columns
  clamped to one committed row count), and the cover index is copied in
  the same critical section.  A save racing a free-running writer can
  therefore never capture columns at different lengths (a *torn save*)
  or a cover index pointing past the serialized ``model_cover`` rows.
* **Atomic** — the payload is written to a temp file in the target
  directory, fsynced, and atomically renamed over the destination, so a
  crash mid-save leaves either the old file or the new one, never a
  truncated hybrid.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import Any, BinaryIO, Dict, Union

import numpy as np

from repro.storage import fsio
from repro.storage.engine import Database
from repro.storage.schema import Column, ColumnType, Schema

_MAGIC = b"EMDB"
_VERSION = 2

_CTYPE_CODES = {ColumnType.FLOAT64: 0, ColumnType.INT64: 1, ColumnType.BYTES: 2}
_CODE_CTYPES = {v: k for k, v in _CTYPE_CODES.items()}
_NUMPY_DTYPES = {ColumnType.FLOAT64: "<f8", ColumnType.INT64: "<i8"}


def _write_str(f: BinaryIO, s: str) -> None:
    data = s.encode("utf-8")
    f.write(struct.pack("<I", len(data)))
    f.write(data)


def _read_str(f: BinaryIO) -> str:
    (n,) = struct.unpack("<I", _read_exact(f, 4))
    return _read_exact(f, n).decode("utf-8")


class _Truncated(ValueError):
    """Internal: a read ran past the end of the file mid-section.

    Carries the offset detail; :func:`load_database` re-raises it as a
    plain :class:`ValueError` prefixed with the file path.
    """


def _read_exact(f: BinaryIO, n: int) -> bytes:
    data = f.read(n)
    if len(data) != n:
        offset = f.tell() - len(data)
        raise _Truncated(
            f"truncated database file: wanted {n} byte(s) at offset "
            f"{offset}, file ends after {len(data)}"
        )
    return data


def _capture_database(db: Database):
    """One coherent capture of everything a save serialises.

    Runs under the database lock, so the epoch-stamped raw-tuples
    snapshot, the per-table column scans and the cover index are mutually
    consistent: every captured table clamps all its columns to a single
    committed row count, and every cover-index row id points inside the
    captured ``model_cover`` rows.  All captured values are immutable
    (zero-copy prefix views / tuple snapshots / a dict copy), so the
    serialization itself can run outside the lock without pinning
    writers for the duration of the encode.
    """
    with db._lock:
        cover_index = db.cover_index()
        tables: Dict[str, Dict[str, Any]] = {}
        for name in db.table_names():
            if name == "raw_tuples":
                # Serialize the raw stream from the pinned snapshot — the
                # same epoch-stamped prefix every concurrent reader pins.
                batch = db.snapshot().batch
                tables[name] = {"t": batch.t, "x": batch.x, "y": batch.y, "s": batch.s}
            else:
                tables[name] = db.table(name).scan()
        return db.partition_h, cover_index, tables


def serialize_database(db: Database) -> bytes:
    """The on-disk byte payload for ``db`` (snapshot-consistent)."""
    partition_h, cover_index, tables = _capture_database(db)
    buf = io.BytesIO()
    buf.write(_MAGIC)
    buf.write(struct.pack("<I", _VERSION))
    # Partition metadata: window size (0 = unpartitioned) and the
    # per-window latest-cover index.
    buf.write(struct.pack("<Q", partition_h or 0))
    buf.write(struct.pack("<I", len(cover_index)))
    for window_c in sorted(cover_index):
        buf.write(struct.pack("<qQ", window_c, cover_index[window_c]))
    buf.write(struct.pack("<I", len(tables)))
    for name in sorted(tables):
        columns = tables[name]
        schema = db.table(name).schema
        _write_str(buf, name)
        buf.write(struct.pack("<I", len(schema)))
        for col in schema.columns:
            _write_str(buf, col.name)
            buf.write(struct.pack("<B", _CTYPE_CODES[col.ctype]))
        n_rows = min((len(v) for v in columns.values()), default=0)
        buf.write(struct.pack("<Q", n_rows))
        for col in schema.columns:
            snapshot = columns[col.name]
            if col.ctype is ColumnType.BYTES:
                for blob in snapshot:
                    buf.write(struct.pack("<I", len(blob)))
                    buf.write(blob)
            else:
                arr = np.asarray(snapshot, dtype=_NUMPY_DTYPES[col.ctype])
                buf.write(arr.tobytes())
    return buf.getvalue()


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically: temp file in the same
    directory, flush + fsync, then rename over the destination.  A crash
    at any point leaves either the previous file or the complete new one;
    the temp file is removed (in a ``finally``) whenever the rename did
    not commit, so no failure mode can leak it.  Shared with the durable
    tier's segment and manifest writers via :mod:`repro.storage.fsio`.
    """
    fsio.atomic_write_bytes(path, payload)


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Serialize every table of ``db`` to ``path``.

    Snapshot-consistent (one epoch-pinned capture for the whole save)
    and crash-safe (atomic temp-file + fsync + rename) — see the module
    docstring.
    """
    _atomic_write(Path(path), serialize_database(db))


def load_database(path: Union[str, Path]) -> Database:
    """Load a database written by :func:`save_database`.

    Structural damage is reported as a :class:`ValueError` naming the
    file and the byte offset the parse failed at: a truncated file (any
    section ending early) and trailing garbage after the last section
    are both rejected — a reload either reproduces the saved database
    exactly or refuses loudly, never silently drops or ignores bytes.
    """
    path = Path(path)
    with path.open("rb") as f:
        try:
            db = _parse_database(f, path)
            trailing = f.read(1)
            if trailing:
                raise ValueError(
                    f"{path}: trailing garbage after the last section "
                    f"at byte offset {f.tell() - 1}"
                )
        except _Truncated as exc:
            raise ValueError(f"{path}: {exc}") from None
        except struct.error as exc:  # defensive: malformed fixed-size field
            raise ValueError(
                f"{path}: truncated database file: corrupt section header "
                f"near byte offset {f.tell()} ({exc})"
            ) from None
        return db


def _parse_database(f: BinaryIO, path: Path) -> Database:
    """Parse one complete container off ``f`` (shared by the loader)."""
    if _read_exact(f, 4) != _MAGIC:
        raise ValueError(f"{path}: not an EnviroMeter database file")
    (version,) = struct.unpack("<I", _read_exact(f, 4))
    if version not in (1, _VERSION):
        raise ValueError(f"{path}: unsupported format version {version}")
    partition_h = None
    cover_index: dict = {}
    if version >= 2:
        (h,) = struct.unpack("<Q", _read_exact(f, 8))
        partition_h = int(h) or None
        (n_entries,) = struct.unpack("<I", _read_exact(f, 4))
        for _ in range(n_entries):
            window_c, rid = struct.unpack("<qQ", _read_exact(f, 16))
            cover_index[int(window_c)] = int(rid)
    (n_tables,) = struct.unpack("<I", _read_exact(f, 4))
    db = Database()
    for _ in range(n_tables):
        name = _read_str(f)
        (n_cols,) = struct.unpack("<I", _read_exact(f, 4))
        cols = []
        for _ in range(n_cols):
            col_name = _read_str(f)
            (code,) = struct.unpack("<B", _read_exact(f, 1))
            cols.append(Column(col_name, _CODE_CTYPES[code]))
        schema = Schema(tuple(cols))
        table = db.create_table(name, schema)
        (n_rows,) = struct.unpack("<Q", _read_exact(f, 8))
        columns: dict = {}
        for col in schema.columns:
            if col.ctype is ColumnType.BYTES:
                blobs = []
                for _ in range(n_rows):
                    (blen,) = struct.unpack("<I", _read_exact(f, 4))
                    blobs.append(_read_exact(f, blen))
                columns[col.name] = blobs
            else:
                raw = _read_exact(f, 8 * n_rows)
                columns[col.name] = np.frombuffer(raw, dtype=_NUMPY_DTYPES[col.ctype])
        if schema.has_bytes:
            # Reassemble rows in insertion order (blob tables are small).
            for i in range(n_rows):
                table.insert(tuple(columns[c.name][i] for c in schema.columns))
        elif n_rows:
            # Numeric-only tables load as one vectorized fill per column.
            table.insert_columns(**columns)
    if version >= 2:
        db._restore_partition_state(partition_h, cover_index)
    else:
        db._rebuild_cover_index()
    return db
