"""Accuracy evaluation against the synthetic ground truth."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.field import PollutionField
from repro.data.tuples import QueryTuple
from repro.models.errors import nrmse_pct
from repro.query.base import PointQueryProcessor


def evaluate_accuracy(
    processor: PointQueryProcessor,
    queries: Sequence[QueryTuple],
    field: PollutionField,
) -> Tuple[float, int]:
    """NRMSE (%) of a processor against the true field.

    Only queries the processor can answer contribute (the naive method
    returns nothing where no tuples fall within radius r); the answered
    count is returned alongside so experiments can report coverage.
    Raises if the processor answers nothing at all.
    """
    predicted: List[float] = []
    actual: List[float] = []
    for q in queries:
        res = processor.process(q)
        if res.value is None:
            continue
        predicted.append(res.value)
        actual.append(field.value(q.t, q.x, q.y))
    if not predicted:
        raise ValueError(f"processor {processor.name!r} answered no queries")
    return (
        nrmse_pct(np.asarray(predicted), np.asarray(actual)),
        len(predicted),
    )
