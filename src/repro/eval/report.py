"""Tabular formatting of experiment rows.

Produces the aligned text tables recorded in EXPERIMENTS.md and printed
by the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiments import Fig6aRow, Fig6bRow, Fig7aRow, Fig7bRow


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_fig6a(rows: List[Fig6aRow]) -> str:
    """Time (s) per method, one column per H — the Figure 6(a) series."""
    h_values = sorted({r.h for r in rows})
    methods = list(dict.fromkeys(r.method for r in rows))
    cell: Dict[tuple, float] = {(r.method, r.h): r.elapsed_s for r in rows}
    header = ["method"] + [f"H={h}" for h in h_values]
    body = [
        [m] + [f"{cell[(m, h)]:.3f}" for h in h_values]
        for m in methods
    ]
    n = rows[0].n_queries if rows else 0
    return f"Figure 6(a) — elapsed seconds for {n} point queries\n" + _table(header, body)


def format_fig6b(rows: List[Fig6bRow]) -> str:
    """NRMSE (%) per method, one column per H — the Figure 6(b) series."""
    h_values = sorted({r.h for r in rows})
    methods = list(dict.fromkeys(r.method for r in rows))
    cell: Dict[tuple, float] = {(r.method, r.h): r.nrmse_pct for r in rows}
    header = ["method"] + [f"H={h}" for h in h_values]
    body = [
        [m] + [f"{cell[(m, h)]:.2f}" for h in h_values]
        for m in methods
    ]
    return "Figure 6(b) — NRMSE (%) vs ground truth\n" + _table(header, body)


def format_fig7a(rows: List[Fig7aRow]) -> str:
    """Memory per method plus the paper's headline ratios."""
    by = {r.method: r.kilobytes for r in rows}
    header = ["method", "kilobytes", "x model-cover"]
    base = by.get("adkmn")
    body = []
    for r in rows:
        ratio = "" if not base else f"{r.kilobytes / base:.1f}x"
        body.append([r.method, f"{r.kilobytes:.1f}", ratio])
    return "Figure 7(a) — memory (KB), averaged\n" + _table(header, body)


def format_fig7b(rows: List[Fig7bRow]) -> str:
    """Traffic ledger per technique plus baseline/model-cache ratios."""
    header = ["technique", "sent (kb)", "received (kb)", "total time (s)"]
    body = [
        [r.technique, f"{r.sent_kb:.2f}", f"{r.received_kb:.2f}", f"{r.total_time_s:.2f}"]
        for r in rows
    ]
    table = _table(header, body)
    by = {r.technique: r for r in rows}
    if "baseline" in by and "model-cache" in by:
        b, m = by["baseline"], by["model-cache"]
        table += (
            f"\nratios (baseline / model-cache): "
            f"sent {b.sent_kb / m.sent_kb:.0f}x, "
            f"received {b.received_kb / m.received_kb:.0f}x, "
            f"time {b.total_time_s / m.total_time_s:.0f}x"
        )
    return "Figure 7(b) — bandwidth for a continuous query\n" + table
