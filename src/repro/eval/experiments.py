"""Experiment runners — one per figure of Section 4.

Each runner regenerates the rows/series of its figure and returns plain
dataclass rows; :mod:`repro.eval.report` formats them as the tables in
EXPERIMENTS.md.  Parameters default to the paper's values (5 000 point
queries, r = 1 km, τn = 2 %, H ∈ {40..240}, H = 5 000 for memory, 100
query tuples for bandwidth) but are adjustable so tests can run scaled-
down versions quickly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.lausanne import LausanneDataset, generate_lausanne_dataset
from repro.data.tuples import QueryTuple, TupleBatch
from repro.data.windows import window
from repro.eval.memory import deep_sizeof_kb
from repro.eval.metrics import evaluate_accuracy
from repro.eval.timing import Timer
from repro.index.rtree import RTree
from repro.index.vptree import VPTree
from repro.network.link import GPRS, CellularLink
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor
from repro.server.server import EnviroMeterServer

PAPER_H_VALUES = (40, 80, 120, 160, 200, 240)
PAPER_RADIUS_M = 1000.0
PAPER_TAU_N = 2.0
PAPER_N_QUERIES = 5000
PAPER_MEMORY_H = 5000
PAPER_MEMORY_RUNS = 10
PAPER_BANDWIDTH_TUPLES = 100

_DATASET_CACHE: Dict[int, LausanneDataset] = {}


def experiment_dataset(seed: int = 7) -> LausanneDataset:
    """The (cached) full-scale synthetic lausanne-data."""
    if seed not in _DATASET_CACHE:
        from repro.data.lausanne import LausanneConfig

        _DATASET_CACHE[seed] = generate_lausanne_dataset(LausanneConfig(seed=seed))
    return _DATASET_CACHE[seed]


def _query_workload(
    dataset: LausanneDataset,
    w: TupleBatch,
    n_queries: int,
    seed: int = 11,
    jitter_m: float = 100.0,
) -> List[QueryTuple]:
    """Point queries for one window.

    Positions are sampled near the sensed data (a random window tuple's
    position plus Gaussian jitter): EnviroMeter's queries come from app
    users on the street network of the monitored city, not from open
    countryside.  Times are sampled near tuple timestamps (±60 s): query
    traffic happens while the city is awake and the buses sense, not in
    the overnight gaps between windows.  Position and time are drawn from
    independent tuples, so a query is *not* pinned to a bus's location at
    its own timestamp.
    """
    rng = random.Random(seed)
    n = len(w)
    out: List[QueryTuple] = []
    for _ in range(n_queries):
        i = rng.randrange(n)
        j = rng.randrange(n)
        out.append(
            QueryTuple(
                t=float(w.t[j]) + rng.uniform(-60.0, 60.0),
                x=float(w.x[i]) + rng.gauss(0.0, jitter_m),
                y=float(w.y[i]) + rng.gauss(0.0, jitter_m),
            )
        )
    return out


def _mid_window(dataset: LausanneDataset, h: int) -> Tuple[int, TupleBatch]:
    """A representative mid-deployment window of size ``h``.

    Anchored at 10:00 on day 15, i.e. a window of contiguous in-service
    data (the paper's "H = 240 raw tuples (4 hour window)" is likewise a
    contiguous daytime window).  A window straddling the overnight service
    gap would mix two traffic regimes and degrade *every* method.
    """
    t_last = float(dataset.tuples.t[-1])
    mid_day = int(t_last // 86_400.0) // 2
    anchor_t = min(mid_day * 86_400.0 + 10.0 * 3_600.0, t_last)
    pos = int(np.searchsorted(dataset.tuples.t, anchor_t))
    c = min(pos // h, max(len(dataset.tuples) // h - 1, 0))
    return c, window(dataset.tuples, c, h)


def _processor(method: str, w: TupleBatch, radius_m: float, tau_n: float):
    if method == "naive":
        return NaiveProcessor(w, radius_m)
    if method in ("rtree", "vptree", "grid", "kdtree"):
        return IndexedProcessor(w, kind=method, radius_m=radius_m)
    if method == "adkmn":
        cfg = AdKMNConfig(tau_n_pct=tau_n)
        return ModelCoverProcessor(fit_adkmn(w, cfg).cover)
    raise ValueError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# Figure 6(a): efficiency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6aRow:
    """Elapsed seconds for ``n_queries`` point queries."""

    h: int
    method: str
    elapsed_s: float
    n_queries: int


def run_fig6a(
    dataset: Optional[LausanneDataset] = None,
    h_values: Sequence[int] = PAPER_H_VALUES,
    methods: Sequence[str] = ("adkmn", "vptree", "rtree", "naive"),
    n_queries: int = PAPER_N_QUERIES,
    radius_m: float = PAPER_RADIUS_M,
    tau_n: float = PAPER_TAU_N,
) -> List[Fig6aRow]:
    """Figure 6(a): query time vs window size, per method.

    Timing covers query processing only — index construction and model
    fitting are preparation, exactly as in the paper, which compares the
    per-query efficiency of the *methods*, not their build cost.
    """
    ds = dataset or experiment_dataset()
    rows: List[Fig6aRow] = []
    for h in h_values:
        _, w = _mid_window(ds, h)
        queries = _query_workload(ds, w, n_queries)
        for method in methods:
            proc = _processor(method, w, radius_m, tau_n)
            with Timer() as t:
                for q in queries:
                    proc.process(q)
            rows.append(
                Fig6aRow(h=h, method=method, elapsed_s=t.elapsed_s, n_queries=n_queries)
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6(b): accuracy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6bRow:
    """NRMSE against ground truth; ``answered`` of ``n_queries`` could be
    evaluated by the method at all."""

    h: int
    method: str
    nrmse_pct: float
    answered: int
    n_queries: int


def run_fig6b(
    dataset: Optional[LausanneDataset] = None,
    h_values: Sequence[int] = PAPER_H_VALUES,
    methods: Sequence[str] = ("adkmn", "naive"),
    n_queries: int = PAPER_N_QUERIES,
    radius_m: float = PAPER_RADIUS_M,
    tau_n: float = PAPER_TAU_N,
) -> List[Fig6bRow]:
    """Figure 6(b): NRMSE vs window size for Ad-KMN and naive.

    R-tree/VP-tree are omitted as in the paper ("they produce the same
    result as the naive method").  NRMSE is computed against the synthetic
    ground-truth field on the queries the method answers.
    """
    ds = dataset or experiment_dataset()
    rows: List[Fig6bRow] = []
    for h in h_values:
        _, w = _mid_window(ds, h)
        queries = _query_workload(ds, w, n_queries)
        for method in methods:
            proc = _processor(method, w, radius_m, tau_n)
            nrmse, answered = evaluate_accuracy(proc, queries, ds.field)
            rows.append(
                Fig6bRow(
                    h=h,
                    method=method,
                    nrmse_pct=nrmse,
                    answered=answered,
                    n_queries=n_queries,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 7(a): memory
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7aRow:
    """Average KB of the queryable structure per method."""

    method: str
    kilobytes: float
    runs: int


def run_fig7a(
    dataset: Optional[LausanneDataset] = None,
    h: int = PAPER_MEMORY_H,
    runs: int = PAPER_MEMORY_RUNS,
    tau_n: float = PAPER_TAU_N,
) -> List[Fig7aRow]:
    """Figure 7(a): memory of points vs index info vs models at H = 5000.

    As in the paper we measure, per method, the structure the query
    processor holds: (a) the stored points for naive, (b) the index
    structure for R-tree/VP-tree, (c) the fitted models + centroids for
    the model cover.  Averaged over ``runs`` windows spread across the
    deployment (the paper averages 10 independent runs).
    """
    ds = dataset or experiment_dataset()
    n_windows = len(ds.tuples) // h
    if n_windows < 1:
        raise ValueError(f"dataset too small for H={h}")
    picks = [int(i * n_windows / runs) for i in range(runs)]
    acc: Dict[str, List[float]] = {"adkmn": [], "naive": [], "rtree": [], "vptree": []}
    for c in picks:
        w = window(ds.tuples, c, h)
        # (a) naive: the complete set of points, as Python row objects
        #     (the paper's naive method scans stored tuples).
        points = [(float(w.t[i]), float(w.x[i]), float(w.y[i]), float(w.s[i]))
                  for i in range(len(w))]
        acc["naive"].append(deep_sizeof_kb(points))
        # (b) index information.
        acc["rtree"].append(deep_sizeof_kb(RTree(w.x, w.y)))
        acc["vptree"].append(deep_sizeof_kb(VPTree(w.x, w.y)))
        # (c) the models generated by the model cover method.
        cover = fit_adkmn(w, AdKMNConfig(tau_n_pct=tau_n)).cover
        acc["adkmn"].append(deep_sizeof_kb(cover))
    return [
        Fig7aRow(method=m, kilobytes=float(np.mean(v)), runs=runs)
        for m, v in acc.items()
    ]


# ---------------------------------------------------------------------------
# Figure 7(b): bandwidth
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7bRow:
    """The mobile device's traffic ledger for one technique."""

    technique: str
    sent_kb: float
    received_kb: float
    total_time_s: float
    n_queries: int


def run_fig7b(
    dataset: Optional[LausanneDataset] = None,
    n_queries: int = PAPER_BANDWIDTH_TUPLES,
    h: int = 240,
    interval_s: float = 60.0,
) -> List[Fig7bRow]:
    """Figure 7(b): baseline vs model-cache for a 100-tuple continuous
    query over a GPRS link."""
    from repro.client.baseline import BaselineClient
    from repro.client.modelcache import ModelCacheClient

    ds = dataset or experiment_dataset()
    server = EnviroMeterServer(h=h)
    server.ingest(ds.tuples)

    c, w = _mid_window(ds, h)
    t_start = float(w.t[0])
    bbox = ds.covered_bbox()
    route = [
        (bbox.min_x + 0.2 * bbox.width, bbox.min_y + 0.2 * bbox.height),
        (bbox.min_x + 0.5 * bbox.width, bbox.min_y + 0.6 * bbox.height),
        (bbox.min_x + 0.8 * bbox.width, bbox.min_y + 0.8 * bbox.height),
    ]
    traj = waypoint_trajectory(route, t_start, t_start + n_queries * interval_s)
    queries = uniform_query_tuples(traj, t_start, interval_s, n_queries)

    rows: List[Fig7bRow] = []
    for technique, client_cls in (
        ("baseline", BaselineClient),
        ("model-cache", ModelCacheClient),
    ):
        client = client_cls(server, CellularLink(GPRS))
        client.run_continuous(queries)
        rows.append(
            Fig7bRow(
                technique=technique,
                sent_kb=client.stats.sent_kb,
                received_kb=client.stats.received_kb,
                total_time_s=client.stats.total_time_s,
                n_queries=n_queries,
            )
        )
    return rows
