"""ASCII chart rendering for the paper's figures.

The paper presents its evaluation as log-scale line/bar charts; the
report module renders the numbers as tables, and this module renders
them as terminal charts so `repro.cli figures` output can be eyeballed
against Figures 6 and 7 directly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def _log_position(value: float, lo: float, hi: float, width: int) -> int:
    """Column of ``value`` on a log axis spanning [lo, hi]."""
    if value <= 0 or lo <= 0:
        raise ValueError("log axis requires positive values")
    if hi <= lo:
        return 0
    f = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return max(0, min(width - 1, int(round(f * (width - 1)))))


def log_bar_chart(
    values: Dict[str, float],
    unit: str,
    width: int = 48,
) -> str:
    """Horizontal log-scale bar chart, one bar per labelled value.

    Mirrors the paper's Figure 7 style (log-y bars per method).
    """
    if not values:
        raise ValueError("nothing to plot")
    positives = [v for v in values.values() if v > 0]
    if not positives:
        raise ValueError("log chart requires positive values")
    lo = min(positives)
    hi = max(positives)
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    for label, value in values.items():
        bar_len = _log_position(value, lo, hi, width) + 1 if value > 0 else 0
        bar = "#" * bar_len
        lines.append(f"{label.rjust(label_w)} |{bar.ljust(width)} {value:g} {unit}")
    lines.append(f"{' ' * label_w} +{'-' * width} (log scale)")
    return "\n".join(lines)


def series_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str,
    y_label: str,
    width: int = 60,
    height: int = 16,
    log_y: bool = True,
) -> str:
    """Scatter chart of named (x, y) series, one marker per series.

    Mirrors the paper's Figure 6 style (per-method series over H, log-y
    for efficiency).  Markers are assigned in order: ``o x + * # @``.
    """
    if not series:
        raise ValueError("nothing to plot")
    markers = "ox+*#@"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y and min(ys) <= 0:
        raise ValueError("log-y chart requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    def col(x: float) -> int:
        if x_hi == x_lo:
            return 0
        return int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(y: float) -> int:
        if y_hi == y_lo:
            return 0
        if log_y:
            f = (math.log10(y) - math.log10(y_lo)) / (math.log10(y_hi) - math.log10(y_lo))
        else:
            f = (y - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(f * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for (name, pts), marker in zip(series.items(), markers):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            grid[row(y)][col(x)] = marker

    top = f"{y_hi:g}"
    bottom = f"{y_lo:g}"
    gutter = max(len(top), len(bottom))
    lines = []
    for i, cells in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label.rjust(gutter)} |{''.join(cells)}")
    lines.append(f"{' ' * gutter} +{'-' * width}")
    axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(f"{' ' * gutter}  {axis}")
    lines.append(
        f"{' ' * gutter}  {x_label} vs {y_label}"
        f"{' (log y)' if log_y else ''}   {'  '.join(legend)}"
    )
    return "\n".join(lines)


def fig6a_chart(rows) -> str:
    """Figure 6(a) as an ASCII chart (time vs H per method, log y)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for r in rows:
        series.setdefault(r.method, []).append((float(r.h), r.elapsed_s))
    return series_chart(series, "window size H", "time (s)", log_y=True)


def fig7b_chart(rows) -> str:
    """Figure 7(b) as log bar charts per quantity."""
    sent = {r.technique: r.sent_kb for r in rows}
    received = {r.technique: r.received_kb for r in rows}
    times = {r.technique: r.total_time_s for r in rows}
    return "\n\n".join(
        (
            "sent:\n" + log_bar_chart(sent, "kb"),
            "received:\n" + log_bar_chart(received, "kb"),
            "total time:\n" + log_bar_chart(times, "s"),
        )
    )
