"""Evaluation harness: the code behind every figure in Section 4."""

from repro.eval.experiments import (
    Fig6aRow,
    Fig6bRow,
    Fig7aRow,
    Fig7bRow,
    run_fig6a,
    run_fig6b,
    run_fig7a,
    run_fig7b,
)
from repro.eval.memory import deep_sizeof
from repro.eval.metrics import evaluate_accuracy
from repro.eval.timing import Timer

__all__ = [
    "Fig6aRow",
    "Fig6bRow",
    "Fig7aRow",
    "Fig7bRow",
    "run_fig6a",
    "run_fig6b",
    "run_fig7a",
    "run_fig7b",
    "deep_sizeof",
    "evaluate_accuracy",
    "Timer",
]
