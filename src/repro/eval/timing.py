"""Wall-clock timing helpers and cache-effectiveness counters.

:class:`Timer` / :func:`time_callable` serve the efficiency experiment.
:class:`CacheStats` — the shared counter block surfaced by every bounded
cache — now lives with the one cache implementation in
:mod:`repro.query.pipeline.cache` and is re-exported here for
compatibility.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.query.pipeline.cache import CacheStats

__all__ = ["CacheStats", "Timer", "time_callable"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start


def time_callable(fn: Callable[[], None], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
