"""Wall-clock timing helpers for the efficiency experiment."""

from __future__ import annotations

import time
from typing import Callable, Optional


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start


def time_callable(fn: Callable[[], None], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
