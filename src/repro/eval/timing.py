"""Wall-clock timing helpers and cache-effectiveness counters.

:class:`Timer` / :func:`time_callable` serve the efficiency experiment;
:class:`CacheStats` is the shared counter block surfaced by bounded
caches (notably the query engine's LRU processor cache) so experiments
can report hit rates next to wall times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a bounded cache.

    Plain integer bumps; the owning cache is responsible for doing them
    under its own lock when accessed from several threads.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 before any lookup."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def as_dict(self) -> Dict[str, float]:
        """Snapshot for reports / benchmark ``extra_info`` blocks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start


def time_callable(fn: Callable[[], None], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
