"""Stream replay: drive the server the way the deployment does.

The OpenSense pipeline dumps raw tuples into the database as buses report
them; covers are built lazily per window (the paper's "lazy update
policies").  :class:`StreamReplayer` replays a recorded dataset in time
order, delivering tuples to the server in ingest batches and advancing a
virtual clock, so tests and examples can exercise exactly the
ingest/lazy-refit path a live deployment follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.data.tuples import TupleBatch
from repro.network.messages import QueryRequest
from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)

ProgressCallback = Callable[[float, int], None]
"""Called after each delivered batch with (virtual time, total ingested)."""


@dataclass
class ReplayStats:
    """What a replay run did."""

    batches: int = 0
    tuples: int = 0
    covers_built: int = 0
    covers_fitted: int = 0
    windows_sealed: int = 0
    final_time: float = 0.0
    final_epoch: int = 0


class StreamReplayer:
    """Replays a tuple batch into a server in ``batch_interval_s`` slices.

    Accepts any server exposing the duck-typed serving interface
    (``ingest``/``handle`` plus the replay-stats properties) — the plain,
    sharded and concurrent front ends all qualify."""

    def __init__(
        self,
        server: Union[
            EnviroMeterServer, ShardedEnviroMeterServer, ConcurrentEnviroMeterServer
        ],
        batch_interval_s: float = 600.0,
    ) -> None:
        if batch_interval_s <= 0:
            raise ValueError("batch interval must be positive")
        self.server = server
        self.batch_interval_s = batch_interval_s

    def slices(self, batch: TupleBatch) -> Iterator[Tuple[float, TupleBatch]]:
        """Yield ``(delivery_time, slice)`` per replay interval.

        Slices partition the stream; empty intervals (service gaps) are
        skipped, matching a store-and-forward uplink that only talks when
        it has data.
        """
        if not len(batch):
            return
        if not batch.is_time_sorted():
            raise ValueError("replay requires a time-sorted stream")
        t0 = float(batch.t[0])
        t_end = float(batch.t[-1])
        lo = t0
        while lo <= t_end:
            hi = lo + self.batch_interval_s
            start = int(np.searchsorted(batch.t, lo, side="left"))
            stop = int(np.searchsorted(batch.t, hi, side="left"))
            if stop > start:
                yield hi, batch.slice(start, stop)
            lo = hi

    def run(
        self,
        batch: TupleBatch,
        query_every_s: Optional[float] = None,
        query_position: Tuple[float, float] = (2500.0, 1800.0),
        on_progress: Optional[ProgressCallback] = None,
    ) -> ReplayStats:
        """Replay the stream; optionally issue a point query after every
        ``query_every_s`` of virtual time (forcing lazy cover builds).

        Returns replay statistics, including how many distinct covers the
        server materialised along the way.
        """
        stats = ReplayStats()
        next_query = float(batch.t[0]) + (query_every_s or 0.0) if len(batch) else 0.0
        for now, piece in self.slices(batch):
            self.server.ingest(piece)
            stats.batches += 1
            stats.tuples += len(piece)
            stats.final_time = now
            if query_every_s is not None and now >= next_query:
                x, y = query_position
                self.server.handle(QueryRequest(t=float(piece.t[-1]), x=x, y=y))
                next_query = now + query_every_s
            if on_progress is not None:
                on_progress(now, stats.tuples)
        stats.covers_built = self.server.covers_stored
        stats.covers_fitted = self.server.builder_fit_count
        stats.windows_sealed = self.server.sealed_windows_total
        stats.final_epoch = getattr(self.server, "epoch", 0)
        return stats
