"""The EnviroMeter server (Figure 1/3 server region)."""

from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)

__all__ = [
    "ConcurrentEnviroMeterServer",
    "EnviroMeterServer",
    "ShardedEnviroMeterServer",
]
