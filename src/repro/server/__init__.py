"""The EnviroMeter server (Figure 1/3 server region)."""

from repro.server.server import EnviroMeterServer, ShardedEnviroMeterServer

__all__ = ["EnviroMeterServer", "ShardedEnviroMeterServer"]
