"""The EnviroMeter server (Figure 1/3 server region)."""

from repro.server.server import EnviroMeterServer

__all__ = ["EnviroMeterServer"]
