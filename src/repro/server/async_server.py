"""Asyncio HTTP/1.1 + WebSocket front end for the EnviroMeter web modes.

The web interface (Section 3) has so far been an in-process API.  This
module puts it on the network: a stdlib-only :mod:`asyncio` server that
speaks plain HTTP/1.1 for one-shot requests and RFC 6455 WebSocket for
interactive sessions, serving the same three request shapes the demo UI
exercises — point query, continuous (route) query, and heatmap.

Routes:

* ``GET  /health``            — liveness + the modes this backend serves;
* ``POST /query/point``       — ``{"t", "x", "y"}``;
* ``POST /query/continuous``  — ``{"route": [[x, y], ...], "t_start",
  "duration_s"?, "updates"?}``;
* ``POST /query/heatmap``     — ``{"t", "bounds": [min_x, min_y, max_x,
  max_y], "nx"?, "ny"?}``;
* ``GET  /ws``                — WebSocket; each text message is a JSON
  request ``{"mode": "point" | "continuous" | "heatmap", ...}`` with the
  same fields as the matching POST body, answered by one JSON text frame.
  Fragmented client messages are reassembled per RFC 6455 (continuation
  frames, control frames interleaved mid-message) up to ``_MAX_BODY``.

When the service carries a
:class:`~repro.query.subscriptions.SubscriptionRegistry` (its
``subscriptions`` attribute), ``/ws`` additionally accepts standing
queries:

* ``{"mode": "subscribe", "route", "t_start", "interval_s"?,
  "updates"?, "method"?}`` — registers the route and answers one
  ``{"mode": "subscribed", "subscription", "seq": 0, "changes": [...]}``
  frame holding the full initial answer;
* after each ingest the server pushes ``{"mode": "update", ...}``
  frames carrying only the changed readings (delta maintenance runs in
  the executor, never on the event loop or the ingest thread);
* ``{"mode": "unsubscribe", "subscription": id}`` — stops the pushes.

Request limits (documented contract, enforced with 400s): heatmap
``nx``/``ny`` at most ``_MAX_GRID_AXIS`` (512) cells per axis,
``updates`` at most ``_MAX_UPDATES`` (10 000) points per route,
``duration_s``/``interval_s`` must be positive finite numbers, bodies at
most ``_MAX_BODY`` bytes, and ``Content-Length`` must be a plain
non-negative integer.

Concurrency model: the event loop only parses frames and routes; every
query runs in the default thread-pool executor
(``loop.run_in_executor``), so a slow Ad-KMN fit never stalls the
accept loop, and — when the backend is a
:class:`~repro.query.pipeline.parallel.ProcessShardedEngine` — the
actual compute escapes the GIL onto the worker processes entirely.  The
backends are thread-safe (snapshot-pinned reads), so concurrent requests
need no extra locking here.

Two backends plug in behind one service interface:

* :class:`WebAppService` — an in-process
  :class:`~repro.app.webapp.WebInterface` (model-cover answers with
  health levels and marker colours, plus centroid markers on heatmaps);
* :class:`EngineQueryService` — anything with the three-mode engine
  interface (``point_query`` / ``continuous_query_batch`` /
  ``heatmap_grid``): a
  :class:`~repro.query.sharded.ShardedQueryEngine` or its
  process-parallel twin, whose answers are byte-identical by
  construction.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.geo.coords import BoundingBox
from repro.query.base import QueryBatch

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_MAX_HEADER = 16 * 1024
_MAX_BODY = 4 * 1024 * 1024
# Request limits: a heatmap allocates nx*ny float64 cells and a
# continuous query evaluates one tuple per update, so both are capped
# well below anything that could balloon server memory.  Documented in
# docs/architecture.md ("Request limits").
_MAX_GRID_AXIS = 512
_MAX_UPDATES = 10_000

__all__ = [
    "AsyncQueryServer",
    "BackgroundServer",
    "EngineQueryService",
    "HttpError",
    "WebAppService",
]


class HttpError(Exception):
    """An error with an HTTP status, surfaced as a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _clean(value: float) -> Optional[float]:
    """JSON has no NaN/inf: unanswered cells serialize as null."""
    v = float(value)
    return v if math.isfinite(v) else None


def _number(params: Dict[str, Any], key: str) -> float:
    value = params.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise HttpError(400, f"field {key!r} must be a number")
    return float(value)


def _positive_number(params: Dict[str, Any], key: str, default: float) -> float:
    value = params.get(key, default)
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or not math.isfinite(value)
        or value <= 0
    ):
        raise HttpError(400, f"field {key!r} must be a positive number")
    return float(value)


def _optional_int(
    params: Dict[str, Any], key: str, default: int, maximum: int
) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise HttpError(400, f"field {key!r} must be a positive integer")
    if value > maximum:
        raise HttpError(400, f"field {key!r} must be at most {maximum}")
    return value


def _route(params: Dict[str, Any]) -> List[Tuple[float, float]]:
    raw = params.get("route")
    if not isinstance(raw, list) or len(raw) < 2:
        raise HttpError(400, "field 'route' must list at least two [x, y] points")
    route: List[Tuple[float, float]] = []
    for point in raw:
        if (
            not isinstance(point, (list, tuple))
            or len(point) != 2
            or not all(isinstance(v, (int, float)) for v in point)
        ):
            raise HttpError(400, "route points must be [x, y] number pairs")
        route.append((float(point[0]), float(point[1])))
    return route


def _bounds(params: Dict[str, Any]) -> BoundingBox:
    raw = params.get("bounds")
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 4
        or not all(isinstance(v, (int, float)) for v in raw)
    ):
        raise HttpError(
            400, "field 'bounds' must be [min_x, min_y, max_x, max_y]"
        )
    return BoundingBox(float(raw[0]), float(raw[1]), float(raw[2]), float(raw[3]))


class WebAppService:
    """The three modes served by an in-process ``WebInterface``.

    ``subscriptions`` optionally carries a
    :class:`~repro.query.subscriptions.SubscriptionRegistry` over the
    same backend, enabling ``{"mode": "subscribe"}`` on ``/ws``.
    """

    modes = ("point", "continuous", "heatmap")

    def __init__(self, web, subscriptions=None) -> None:
        self.web = web
        self.subscriptions = subscriptions

    def point(self, params: Dict[str, Any]) -> Dict[str, Any]:
        reading = self.web.point_query(
            _number(params, "t"), _number(params, "x"), _number(params, "y")
        )
        return {
            "mode": "point",
            "x": reading.x,
            "y": reading.y,
            "co2_ppm": reading.co2_ppm,
            "text": reading.text,
        }

    def continuous(self, params: Dict[str, Any]) -> Dict[str, Any]:
        readings = self.web.continuous_query(
            _route(params),
            t_start=_number(params, "t_start"),
            duration_s=_positive_number(params, "duration_s", 1800.0),
            updates=_optional_int(params, "updates", 30, _MAX_UPDATES),
        )
        return {
            "mode": "continuous",
            "readings": [
                {
                    "x": r.x,
                    "y": r.y,
                    "co2_ppm": r.co2_ppm,
                    "marker_color": r.marker_color,
                }
                for r in readings
            ],
        }

    def heatmap(self, params: Dict[str, Any]) -> Dict[str, Any]:
        bounds = _bounds(params)
        nx = _optional_int(params, "nx", 40, _MAX_GRID_AXIS)
        ny = _optional_int(params, "ny", 30, _MAX_GRID_AXIS)
        hm = self.web.heatmap(_number(params, "t"), bounds, nx=nx, ny=ny)
        markers = self.web.centroid_markers(_number(params, "t"))
        return {
            "mode": "heatmap",
            "nx": nx,
            "ny": ny,
            "grid": [[_clean(v) for v in row] for row in hm.grid],
            "markers": [
                {"x": m.x, "y": m.y, "co2_ppm": m.co2_ppm, "color": m.color}
                for m in markers
            ],
        }


class EngineQueryService:
    """The three modes served by a three-mode query engine.

    ``engine`` is anything exposing ``point_query`` /
    ``continuous_query_batch`` / ``heatmap_grid`` — a
    :class:`~repro.query.sharded.ShardedQueryEngine` runs in-process,
    a :class:`~repro.query.pipeline.parallel.ProcessShardedEngine` runs
    the same plans on its worker-process pool.
    """

    modes = ("point", "continuous", "heatmap")

    def __init__(self, engine, method: str = "naive", subscriptions=None) -> None:
        self.engine = engine
        self.method = method
        self.subscriptions = subscriptions

    def point(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.engine.point_query(
            _number(params, "t"),
            _number(params, "x"),
            _number(params, "y"),
            method=self.method,
        )
        return {
            "mode": "point",
            "value": None if result.value is None else _clean(result.value),
            "support": int(result.support),
        }

    def continuous(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.query.continuous import (
            uniform_query_tuples,
            waypoint_trajectory,
        )

        route = _route(params)
        t_start = _number(params, "t_start")
        duration_s = _positive_number(params, "duration_s", 1800.0)
        updates = _optional_int(params, "updates", 30, _MAX_UPDATES)
        traj = waypoint_trajectory(route, t_start, t_start + duration_s)
        interval = duration_s / max(updates - 1, 1)
        queries = uniform_query_tuples(traj, t_start, interval, updates)
        result = self.engine.continuous_query_batch(
            QueryBatch.from_queries(queries), method=self.method
        )
        return {
            "mode": "continuous",
            "readings": [
                {
                    "x": float(result.queries.x[i]),
                    "y": float(result.queries.y[i]),
                    "value": _clean(result.values[i]),
                    "support": int(result.support[i]),
                }
                for i in range(len(result))
            ],
        }

    def heatmap(self, params: Dict[str, Any]) -> Dict[str, Any]:
        bounds = _bounds(params)
        nx = _optional_int(params, "nx", 40, _MAX_GRID_AXIS)
        ny = _optional_int(params, "ny", 30, _MAX_GRID_AXIS)
        grid = self.engine.heatmap_grid(
            _number(params, "t"), bounds, nx=nx, ny=ny, method=self.method
        )
        return {
            "mode": "heatmap",
            "nx": nx,
            "ny": ny,
            "grid": [[_clean(v) for v in row] for row in np.asarray(grid)],
        }


class AsyncQueryServer:
    """The asyncio front door: HTTP/1.1 routes plus a ``/ws`` endpoint."""

    def __init__(
        self, service, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_MAX_HEADER
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- request dispatch ----------------------------------------------------

    async def _answer(self, mode: str, params: Dict[str, Any]) -> Dict[str, Any]:
        handler = getattr(self.service, mode, None)
        if mode not in getattr(self.service, "modes", ()) or handler is None:
            raise HttpError(404, f"unknown mode {mode!r}")
        loop = asyncio.get_running_loop()
        # Queries block (numpy, fits, worker-pool round trips): keep them
        # off the event loop so parsing/accepting never stalls.
        return await loop.run_in_executor(None, handler, params)

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                try:
                    method, path, headers = self._parse_head(head)
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request"}, close=True
                    )
                    return
                if (
                    path == "/ws"
                    and headers.get("upgrade", "").lower() == "websocket"
                ):
                    await self._serve_websocket(reader, writer, headers)
                    return
                body = b""
                raw_length = headers.get("content-length", "").strip() or "0"
                # int() is looser than the RFC (accepts "+1", "1_0",
                # unicode digits): require plain ASCII digits.
                if not (raw_length.isascii() and raw_length.isdigit()):
                    await self._respond(
                        writer,
                        400,
                        {"error": "invalid Content-Length header"},
                        close=True,
                    )
                    return
                length = int(raw_length)
                if length:
                    if length > _MAX_BODY:
                        await self._respond(
                            writer, 413, {"error": "body too large"}, close=True
                        )
                        return
                    body = await reader.readexactly(length)
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._handle_request(method, path, body)
                await self._respond(writer, status, payload, close=not keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _handle_request(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            if method == "GET" and path == "/health":
                return 200, {
                    "status": "ok",
                    "modes": list(getattr(self.service, "modes", ())),
                    "subscriptions": getattr(self.service, "subscriptions", None)
                    is not None,
                }
            if method == "POST" and path.startswith("/query/"):
                mode = path[len("/query/") :]
                try:
                    params = json.loads(body.decode("utf-8") or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise HttpError(400, "body must be a JSON object") from None
                if not isinstance(params, dict):
                    raise HttpError(400, "body must be a JSON object")
                return 200, await self._answer(mode, params)
            raise HttpError(404, f"no route {method} {path}")
        except HttpError as exc:
            return exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - surface as a 500, keep serving
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    async def _respond(
        writer, status: int, payload: Dict[str, Any], close: bool
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- WebSocket -----------------------------------------------------------

    async def _serve_websocket(self, reader, writer, headers) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._respond(
                writer, 400, {"error": "missing Sec-WebSocket-Key"}, close=True
            )
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
        ).decode("latin-1")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        send_lock = asyncio.Lock()
        session = _WsSubscriptionSession(self, writer, send_lock)
        try:
            while True:
                try:
                    message = await self._read_message(reader, writer, send_lock)
                except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                    return
                if message is None:  # peer sent close
                    return
                reply = await self._ws_reply(message, session)
                await self._send_text(writer, send_lock, reply)
        finally:
            await session.close()

    async def _ws_reply(
        self, payload: bytes, session: "_WsSubscriptionSession"
    ) -> Dict[str, Any]:
        try:
            request = json.loads(payload.decode("utf-8"))
            if not isinstance(request, dict) or "mode" not in request:
                raise HttpError(400, "frame must be a JSON object with 'mode'")
            mode = str(request["mode"])
            if mode == "subscribe":
                return await session.subscribe(request)
            if mode == "unsubscribe":
                return await session.unsubscribe(request)
            return await self._answer(mode, request)
        except HttpError as exc:
            return {"error": exc.message}
        except Exception as exc:  # noqa: BLE001
            return {"error": f"{type(exc).__name__}: {exc}"}

    async def _read_message(
        self, reader, writer, send_lock: asyncio.Lock
    ) -> Optional[bytes]:
        """Read one complete text message, reassembling fragments.

        RFC 6455 §5.4: a message is one non-FIN data frame followed by
        continuation frames (opcode 0x0) until a FIN; control frames may
        interleave mid-message but may not themselves be fragmented.
        Returns the reassembled text payload, ``None`` when the peer
        closes, skips complete binary messages, and raises
        :class:`ValueError` on protocol violations (the caller drops the
        connection, as before).
        """
        in_progress: Optional[int] = None  # opcode of the open message
        parts: List[bytes] = []
        total = 0
        while True:
            fin, opcode, payload = await self._read_frame(reader)
            if opcode >= 0x8:
                # Control frames: never fragmented, payload <= 125.
                if not fin or len(payload) > 125:
                    raise ValueError("malformed control frame")
                if opcode == 0x8:  # close
                    async with send_lock:
                        await self._send_frame(writer, 0x8, payload[:2])
                    return None
                if opcode == 0x9:  # ping
                    async with send_lock:
                        await self._send_frame(writer, 0xA, payload)
                    continue
                if opcode == 0xA:  # unsolicited pong
                    continue
                raise ValueError(f"unknown control opcode {opcode:#x}")
            if opcode in (0x1, 0x2):
                if in_progress is not None:
                    raise ValueError("data frame inside a fragmented message")
                if fin:
                    if opcode == 0x1:
                        return payload
                    continue  # complete binary message: not a request
                in_progress = opcode
                parts = [payload]
                total = len(payload)
            elif opcode == 0x0:
                if in_progress is None:
                    raise ValueError("continuation frame with no message open")
                parts.append(payload)
                total += len(payload)
                if fin:
                    message = b"".join(parts)
                    kind, in_progress, parts, total = in_progress, None, [], 0
                    if kind == 0x1:
                        return message
                    continue  # reassembled binary message: skipped
            else:
                raise ValueError(f"unsupported opcode {opcode:#x}")
            if total > _MAX_BODY:
                raise ValueError("message too large")

    @staticmethod
    async def _read_frame(reader) -> Tuple[bool, int, bytes]:
        b0, b1 = await reader.readexactly(2)
        fin = bool(b0 & 0x80)
        if b0 & 0x70:
            # No extension negotiated, so RSV1-3 must be zero (§5.2).
            raise ValueError("reserved bits set")
        opcode = b0 & 0x0F
        masked = bool(b1 & 0x80)
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > _MAX_BODY:
            raise ValueError("frame too large")
        if not masked:
            # RFC 6455 §5.1: client frames MUST be masked.
            raise ValueError("client frames must be masked")
        mask = await reader.readexactly(4)
        data = bytearray(await reader.readexactly(length))
        for i in range(length):
            data[i] ^= mask[i % 4]
        return fin, opcode, bytes(data)

    async def _send_text(
        self, writer, send_lock: asyncio.Lock, payload: Dict[str, Any]
    ) -> None:
        async with send_lock:
            await self._send_frame(
                writer, 0x1, json.dumps(payload).encode("utf-8")
            )

    @staticmethod
    async def _send_frame(writer, opcode: int, payload: bytes) -> None:
        head = bytes([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head += bytes([n])
        elif n < 1 << 16:
            head += bytes([126]) + struct.pack(">H", n)
        else:
            head += bytes([127]) + struct.pack(">Q", n)
        writer.write(head + payload)
        await writer.drain()


class _WsSubscriptionSession:
    """Standing-subscription state for one ``/ws`` connection.

    The ingest-hook → asyncio bridge: the registry's ingest listener
    sets an :class:`asyncio.Event` via ``call_soon_threadsafe``; the
    pusher task answers it by running one delta-maintenance pass in the
    executor (never on the event loop) and pushing each owned
    subscription's queued updates as ``{"mode": "update"}`` text frames
    under the connection's send lock, so pushes interleave safely with
    request replies and pongs.
    """

    def __init__(
        self, server: AsyncQueryServer, writer, send_lock: asyncio.Lock
    ) -> None:
        self._server = server
        self._writer = writer
        self._send_lock = send_lock
        self._registry = getattr(server.service, "subscriptions", None)
        self._owned: Dict[int, Any] = {}  # sub id -> Subscription
        self._wake = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._listener = None
        self._pusher: Optional[asyncio.Task] = None

    async def subscribe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._registry is None:
            raise HttpError(
                400, "subscriptions are not enabled on this backend"
            )
        route = _route(request)
        t_start = _number(request, "t_start")
        interval_s = _positive_number(request, "interval_s", 60.0)
        count = _optional_int(request, "updates", 30, _MAX_UPDATES)
        method = request.get("method")
        if method is not None and not isinstance(method, str):
            raise HttpError(400, "field 'method' must be a string")
        registry = self._registry
        try:
            sub = await self._loop.run_in_executor(
                None,
                lambda: registry.subscribe(
                    route,
                    t_start,
                    interval_s=interval_s,
                    count=count,
                    method=method,
                ),
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        self._owned[sub.id] = sub
        self._ensure_pusher()
        reply: Dict[str, Any] = {"mode": "subscribed"}
        reply.update(sub.initial.to_json(queries=sub.batch))
        return reply

    async def unsubscribe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        sub_id = request.get("subscription")
        if not isinstance(sub_id, int) or isinstance(sub_id, bool):
            raise HttpError(400, "field 'subscription' must be an integer id")
        sub = self._owned.pop(sub_id, None)
        if sub is None:
            raise HttpError(400, f"unknown subscription {sub_id}")
        self._registry.unregister(sub_id)
        return {"mode": "unsubscribed", "subscription": sub_id}

    def _ensure_pusher(self) -> None:
        if self._pusher is None:
            loop = self._loop
            wake = self._wake
            self._listener = lambda: loop.call_soon_threadsafe(wake.set)
            self._registry.add_listener(self._listener)
            self._pusher = loop.create_task(self._push_loop())

    async def _push_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                await self._loop.run_in_executor(
                    None, self._registry.maintain
                )
                for sub_id, sub in list(self._owned.items()):
                    for update in self._registry.poll(sub_id, maintain=False):
                        frame: Dict[str, Any] = {"mode": "update"}
                        frame.update(update.to_json(queries=sub.batch))
                        await self._server._send_text(
                            self._writer, self._send_lock, frame
                        )
        except (ConnectionError, OSError):
            pass  # client went away; close() tears the rest down

    async def close(self) -> None:
        if self._pusher is not None:
            self._pusher.cancel()
            try:
                await self._pusher
            except asyncio.CancelledError:
                pass
            self._pusher = None
        if self._listener is not None:
            self._registry.remove_listener(self._listener)
            self._listener = None
        for sub_id in list(self._owned):
            del self._owned[sub_id]
            self._registry.unregister(sub_id)


class BackgroundServer:
    """An :class:`AsyncQueryServer` on its own event-loop thread.

    For tests and embedding: ``with BackgroundServer(service) as server``
    yields a bound ``server.port`` on 127.0.0.1 and tears the loop down
    on exit.  The CLI's foreground mode uses ``serve_forever`` directly.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = AsyncQueryServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.close())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("server failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
