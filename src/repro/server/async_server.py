"""Asyncio HTTP/1.1 + WebSocket front end for the EnviroMeter web modes.

The web interface (Section 3) has so far been an in-process API.  This
module puts it on the network: a stdlib-only :mod:`asyncio` server that
speaks plain HTTP/1.1 for one-shot requests and RFC 6455 WebSocket for
interactive sessions, serving the same three request shapes the demo UI
exercises — point query, continuous (route) query, and heatmap.

Routes:

* ``GET  /health``            — liveness + the modes this backend serves;
* ``POST /query/point``       — ``{"t", "x", "y"}``;
* ``POST /query/continuous``  — ``{"route": [[x, y], ...], "t_start",
  "duration_s"?, "updates"?}``;
* ``POST /query/heatmap``     — ``{"t", "bounds": [min_x, min_y, max_x,
  max_y], "nx"?, "ny"?}``;
* ``GET  /ws``                — WebSocket; each text frame is a JSON
  request ``{"mode": "point" | "continuous" | "heatmap", ...}`` with the
  same fields as the matching POST body, answered by one JSON text frame.

Concurrency model: the event loop only parses frames and routes; every
query runs in the default thread-pool executor
(``loop.run_in_executor``), so a slow Ad-KMN fit never stalls the
accept loop, and — when the backend is a
:class:`~repro.query.pipeline.parallel.ProcessShardedEngine` — the
actual compute escapes the GIL onto the worker processes entirely.  The
backends are thread-safe (snapshot-pinned reads), so concurrent requests
need no extra locking here.

Two backends plug in behind one service interface:

* :class:`WebAppService` — an in-process
  :class:`~repro.app.webapp.WebInterface` (model-cover answers with
  health levels and marker colours, plus centroid markers on heatmaps);
* :class:`EngineQueryService` — anything with the three-mode engine
  interface (``point_query`` / ``continuous_query_batch`` /
  ``heatmap_grid``): a
  :class:`~repro.query.sharded.ShardedQueryEngine` or its
  process-parallel twin, whose answers are byte-identical by
  construction.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.geo.coords import BoundingBox
from repro.query.base import QueryBatch

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_MAX_HEADER = 16 * 1024
_MAX_BODY = 4 * 1024 * 1024

__all__ = [
    "AsyncQueryServer",
    "BackgroundServer",
    "EngineQueryService",
    "HttpError",
    "WebAppService",
]


class HttpError(Exception):
    """An error with an HTTP status, surfaced as a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _clean(value: float) -> Optional[float]:
    """JSON has no NaN/inf: unanswered cells serialize as null."""
    v = float(value)
    return v if math.isfinite(v) else None


def _number(params: Dict[str, Any], key: str) -> float:
    value = params.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise HttpError(400, f"field {key!r} must be a number")
    return float(value)


def _optional_int(params: Dict[str, Any], key: str, default: int) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise HttpError(400, f"field {key!r} must be a positive integer")
    return value


def _route(params: Dict[str, Any]) -> List[Tuple[float, float]]:
    raw = params.get("route")
    if not isinstance(raw, list) or len(raw) < 2:
        raise HttpError(400, "field 'route' must list at least two [x, y] points")
    route: List[Tuple[float, float]] = []
    for point in raw:
        if (
            not isinstance(point, (list, tuple))
            or len(point) != 2
            or not all(isinstance(v, (int, float)) for v in point)
        ):
            raise HttpError(400, "route points must be [x, y] number pairs")
        route.append((float(point[0]), float(point[1])))
    return route


def _bounds(params: Dict[str, Any]) -> BoundingBox:
    raw = params.get("bounds")
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 4
        or not all(isinstance(v, (int, float)) for v in raw)
    ):
        raise HttpError(
            400, "field 'bounds' must be [min_x, min_y, max_x, max_y]"
        )
    return BoundingBox(float(raw[0]), float(raw[1]), float(raw[2]), float(raw[3]))


class WebAppService:
    """The three modes served by an in-process ``WebInterface``."""

    modes = ("point", "continuous", "heatmap")

    def __init__(self, web) -> None:
        self.web = web

    def point(self, params: Dict[str, Any]) -> Dict[str, Any]:
        reading = self.web.point_query(
            _number(params, "t"), _number(params, "x"), _number(params, "y")
        )
        return {
            "mode": "point",
            "x": reading.x,
            "y": reading.y,
            "co2_ppm": reading.co2_ppm,
            "text": reading.text,
        }

    def continuous(self, params: Dict[str, Any]) -> Dict[str, Any]:
        readings = self.web.continuous_query(
            _route(params),
            t_start=_number(params, "t_start"),
            duration_s=float(params.get("duration_s", 1800.0)),
            updates=_optional_int(params, "updates", 30),
        )
        return {
            "mode": "continuous",
            "readings": [
                {
                    "x": r.x,
                    "y": r.y,
                    "co2_ppm": r.co2_ppm,
                    "marker_color": r.marker_color,
                }
                for r in readings
            ],
        }

    def heatmap(self, params: Dict[str, Any]) -> Dict[str, Any]:
        bounds = _bounds(params)
        nx = _optional_int(params, "nx", 40)
        ny = _optional_int(params, "ny", 30)
        hm = self.web.heatmap(_number(params, "t"), bounds, nx=nx, ny=ny)
        markers = self.web.centroid_markers(_number(params, "t"))
        return {
            "mode": "heatmap",
            "nx": nx,
            "ny": ny,
            "grid": [[_clean(v) for v in row] for row in hm.grid],
            "markers": [
                {"x": m.x, "y": m.y, "co2_ppm": m.co2_ppm, "color": m.color}
                for m in markers
            ],
        }


class EngineQueryService:
    """The three modes served by a three-mode query engine.

    ``engine`` is anything exposing ``point_query`` /
    ``continuous_query_batch`` / ``heatmap_grid`` — a
    :class:`~repro.query.sharded.ShardedQueryEngine` runs in-process,
    a :class:`~repro.query.pipeline.parallel.ProcessShardedEngine` runs
    the same plans on its worker-process pool.
    """

    modes = ("point", "continuous", "heatmap")

    def __init__(self, engine, method: str = "naive") -> None:
        self.engine = engine
        self.method = method

    def point(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.engine.point_query(
            _number(params, "t"),
            _number(params, "x"),
            _number(params, "y"),
            method=self.method,
        )
        return {
            "mode": "point",
            "value": None if result.value is None else _clean(result.value),
            "support": int(result.support),
        }

    def continuous(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.query.continuous import (
            uniform_query_tuples,
            waypoint_trajectory,
        )

        route = _route(params)
        t_start = _number(params, "t_start")
        duration_s = float(params.get("duration_s", 1800.0))
        updates = _optional_int(params, "updates", 30)
        traj = waypoint_trajectory(route, t_start, t_start + duration_s)
        interval = duration_s / max(updates - 1, 1)
        queries = uniform_query_tuples(traj, t_start, interval, updates)
        result = self.engine.continuous_query_batch(
            QueryBatch.from_queries(queries), method=self.method
        )
        return {
            "mode": "continuous",
            "readings": [
                {
                    "x": float(result.queries.x[i]),
                    "y": float(result.queries.y[i]),
                    "value": _clean(result.values[i]),
                    "support": int(result.support[i]),
                }
                for i in range(len(result))
            ],
        }

    def heatmap(self, params: Dict[str, Any]) -> Dict[str, Any]:
        bounds = _bounds(params)
        nx = _optional_int(params, "nx", 40)
        ny = _optional_int(params, "ny", 30)
        grid = self.engine.heatmap_grid(
            _number(params, "t"), bounds, nx=nx, ny=ny, method=self.method
        )
        return {
            "mode": "heatmap",
            "nx": nx,
            "ny": ny,
            "grid": [[_clean(v) for v in row] for row in np.asarray(grid)],
        }


class AsyncQueryServer:
    """The asyncio front door: HTTP/1.1 routes plus a ``/ws`` endpoint."""

    def __init__(
        self, service, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_MAX_HEADER
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- request dispatch ----------------------------------------------------

    async def _answer(self, mode: str, params: Dict[str, Any]) -> Dict[str, Any]:
        handler = getattr(self.service, mode, None)
        if mode not in getattr(self.service, "modes", ()) or handler is None:
            raise HttpError(404, f"unknown mode {mode!r}")
        loop = asyncio.get_running_loop()
        # Queries block (numpy, fits, worker-pool round trips): keep them
        # off the event loop so parsing/accepting never stalls.
        return await loop.run_in_executor(None, handler, params)

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                try:
                    method, path, headers = self._parse_head(head)
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request"}, close=True
                    )
                    return
                if (
                    path == "/ws"
                    and headers.get("upgrade", "").lower() == "websocket"
                ):
                    await self._serve_websocket(reader, writer, headers)
                    return
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length:
                    if length > _MAX_BODY:
                        await self._respond(
                            writer, 413, {"error": "body too large"}, close=True
                        )
                        return
                    body = await reader.readexactly(length)
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._handle_request(method, path, body)
                await self._respond(writer, status, payload, close=not keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _handle_request(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            if method == "GET" and path == "/health":
                return 200, {
                    "status": "ok",
                    "modes": list(getattr(self.service, "modes", ())),
                }
            if method == "POST" and path.startswith("/query/"):
                mode = path[len("/query/") :]
                try:
                    params = json.loads(body.decode("utf-8") or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise HttpError(400, "body must be a JSON object") from None
                if not isinstance(params, dict):
                    raise HttpError(400, "body must be a JSON object")
                return 200, await self._answer(mode, params)
            raise HttpError(404, f"no route {method} {path}")
        except HttpError as exc:
            return exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - surface as a 500, keep serving
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    async def _respond(
        writer, status: int, payload: Dict[str, Any], close: bool
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- WebSocket -----------------------------------------------------------

    async def _serve_websocket(self, reader, writer, headers) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._respond(
                writer, 400, {"error": "missing Sec-WebSocket-Key"}, close=True
            )
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
        ).decode("latin-1")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        while True:
            try:
                opcode, payload = await self._read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return
            if opcode == 0x8:  # close
                await self._send_frame(writer, 0x8, payload[:2])
                return
            if opcode == 0x9:  # ping
                await self._send_frame(writer, 0xA, payload)
                continue
            if opcode != 0x1:  # only text frames carry requests
                continue
            reply = await self._ws_reply(payload)
            await self._send_frame(
                writer, 0x1, json.dumps(reply).encode("utf-8")
            )

    async def _ws_reply(self, payload: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(payload.decode("utf-8"))
            if not isinstance(request, dict) or "mode" not in request:
                raise HttpError(400, "frame must be a JSON object with 'mode'")
            return await self._answer(str(request["mode"]), request)
        except HttpError as exc:
            return {"error": exc.message}
        except Exception as exc:  # noqa: BLE001
            return {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    async def _read_frame(reader) -> Tuple[int, bytes]:
        b0, b1 = await reader.readexactly(2)
        opcode = b0 & 0x0F
        masked = bool(b1 & 0x80)
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > _MAX_BODY:
            raise ValueError("frame too large")
        if not masked:
            # RFC 6455 §5.1: client frames MUST be masked.
            raise ValueError("client frames must be masked")
        mask = await reader.readexactly(4)
        data = bytearray(await reader.readexactly(length))
        for i in range(length):
            data[i] ^= mask[i % 4]
        return opcode, bytes(data)

    @staticmethod
    async def _send_frame(writer, opcode: int, payload: bytes) -> None:
        head = bytes([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head += bytes([n])
        elif n < 1 << 16:
            head += bytes([126]) + struct.pack(">H", n)
        else:
            head += bytes([127]) + struct.pack(">Q", n)
        writer.write(head + payload)
        await writer.drain()


class BackgroundServer:
    """An :class:`AsyncQueryServer` on its own event-loop thread.

    For tests and embedding: ``with BackgroundServer(service) as server``
    yields a bound ``server.port`` on 127.0.0.1 and tears the loop down
    on exit.  The CLI's foreground mode uses ``serve_forever`` directly.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = AsyncQueryServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.close())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("server failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
