"""The EnviroMeter server.

Owns the database (raw tuples + model covers), maintains covers lazily
(a window's cover is fitted on first demand and reused until the stream
moves past the window — the paper's "lazy update policies"), and serves
the two request types of Figure 3:

* a :class:`~repro.network.messages.QueryRequest` is answered with the
  interpolated value (the baseline path, and the app's point-query mode);
* a :class:`~repro.network.messages.ModelRequest` is answered with the
  current window's serialized cover — coefficients, centroids and the
  validity horizon ``t_n`` (the model-cache path, Section 2.3).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.adkmn import AdKMNConfig
from repro.core.builder import CoverBuilder
from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple, TupleBatch
from repro.data.windows import windows_for_times
from repro.geo.coords import euclidean
from repro.geo.region import RegionGrid
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)
from repro.query.base import QueryBatch
from repro.query.modelcover import ModelCoverProcessor
from repro.storage.engine import Database


class EnviroMeterServer:
    """Server side of the EnviroMeter platform."""

    def __init__(
        self,
        h: int = 240,
        config: Optional[AdKMNConfig] = None,
        database: Optional[Database] = None,
        validity_horizon_s: float = 4.0 * 3600.0,
    ) -> None:
        """``validity_horizon_s`` is how far past its window's data a
        served cover is declared valid (its ``t_n``).  The default of four
        hours matches the paper's largest evaluation window; the cache-TTL
        ablation sweeps it."""
        self.db = database or Database.for_enviro_meter(partition_h=h)
        if self.db.partition_h is None:
            # e.g. a database loaded from a pre-partitioning (v1) file:
            # adopt the server's windowing so stale-cover invalidation
            # tracks the same windows the builder fits.
            self.db.set_partition_h(h)
        elif self.db.partition_h != h:
            raise ValueError(
                f"database partition_h={self.db.partition_h} does not match "
                f"server h={h}: stale-cover invalidation would track the "
                f"wrong windows"
            )
        self.h = h
        self.validity_horizon_s = validity_horizon_s
        self._builder = CoverBuilder(
            h, config=config, mode="count", validity_margin_s=validity_horizon_s
        )
        self._stream: Optional[TupleBatch] = None
        self._served_covers = 0
        self._served_values = 0

    # -- ingestion ----------------------------------------------------------

    def ingest(self, batch: TupleBatch) -> int:
        """Append community-sensed tuples.

        Incremental: the cached stream snapshot is refreshed in place
        (zero-copy — the new snapshot extends the old one's storage), and
        only the cover caches of the windows the new tuples actually
        touched are invalidated.  Sealed windows keep their covers."""
        n = self.db.ingest_tuples(batch)
        self._stream = self.db.raw_tuples()
        self._builder.invalidate_many(self.db.last_touched_windows)
        return n

    def _tuples(self) -> TupleBatch:
        if self._stream is None:
            self._stream = self.db.raw_tuples()
        return self._stream

    # -- cover maintenance ----------------------------------------------------

    def windows_for(self, ts: Sequence[float]) -> np.ndarray:
        """Window index per query timestamp, in one vectorized search."""
        batch = self._tuples()
        if not len(batch):
            raise RuntimeError("server has no data")
        return windows_for_times(batch.t, ts, self.h)

    def current_window(self, t: float) -> int:
        """Latest complete-or-current window at time ``t``."""
        return int(self.windows_for((t,))[0])

    def cover_for(self, t: float) -> ModelCover:
        """The model cover responsible for time ``t`` (fitted lazily and
        persisted into the ``model_cover`` table on first fit)."""
        c = self.current_window(t)
        batch = self._tuples()
        stored = self.db.cover_blob_for_window(c)
        if stored is not None:
            return ModelCover.from_blob(stored[2])
        result = self._builder.build(batch, c)
        self.db.store_cover_blob(c, result.cover.valid_until, result.cover.to_blob())
        return result.cover

    # -- request handling -------------------------------------------------------

    def handle(
        self, request: Union[QueryRequest, ModelRequest]
    ) -> Union[ValueResponse, ModelCoverResponse]:
        """Dispatch one client request."""
        if isinstance(request, QueryRequest):
            return self._handle_query(request)
        if isinstance(request, ModelRequest):
            return self._handle_model_request(request)
        raise TypeError(f"server cannot handle {type(request).__name__}")

    def handle_many(
        self, requests: Sequence[Union[QueryRequest, ModelRequest]]
    ) -> List[Union[ValueResponse, ModelCoverResponse]]:
        """Dispatch a batch of requests, answering queries vectorised.

        Query requests are grouped by the window responsible for their
        timestamp; each group is answered by one ``process_batch`` call
        against that window's cover — one cover lookup and one vectorised
        evaluation per group instead of one of each per request.  Model
        requests ride along through the scalar path.  Responses come back
        in request order.
        """
        responses: List[Optional[Union[ValueResponse, ModelCoverResponse]]] = [
            None
        ] * len(requests)
        query_positions: List[int] = []
        for i, request in enumerate(requests):
            if isinstance(request, QueryRequest):
                query_positions.append(i)
            else:
                responses[i] = self.handle(request)
        if query_positions:
            ts = np.array([requests[i].t for i in query_positions])
            windows = self.windows_for(ts)
            for c in np.unique(windows):
                members = [
                    query_positions[k] for k in np.flatnonzero(windows == c)
                ]
                reqs = [requests[i] for i in members]
                cover = self.cover_for(reqs[0].t)
                proc = ModelCoverProcessor(cover)
                batch = QueryBatch(
                    np.array([r.t for r in reqs]),
                    np.array([r.x for r in reqs]),
                    np.array([r.y for r in reqs]),
                )
                result = proc.process_batch(batch)
                for k, i in enumerate(members):
                    value = (
                        float(result.values[k]) if result.answered[k] else math.nan
                    )
                    responses[i] = ValueResponse(t=reqs[k].t, value=value)
                self._served_values += len(members)
        return responses  # type: ignore[return-value]

    def _handle_query(self, request: QueryRequest) -> ValueResponse:
        cover = self.cover_for(request.t)
        proc = ModelCoverProcessor(cover)
        result = proc.process(QueryTuple(t=request.t, x=request.x, y=request.y))
        self._served_values += 1
        value = result.value if result.value is not None else math.nan
        return ValueResponse(t=request.t, value=value)

    def _handle_model_request(self, request: ModelRequest) -> ModelCoverResponse:
        cover = self.cover_for(request.t)
        self._served_covers += 1
        return ModelCoverResponse(blob=cover.to_blob())

    # -- introspection -------------------------------------------------------------

    @property
    def served_values(self) -> int:
        return self._served_values

    @property
    def served_covers(self) -> int:
        return self._served_covers

    @property
    def builder_fit_count(self) -> int:
        """How many times the cover fitter actually ran (cache misses)."""
        return self._builder.fit_count

    # -- replay-stats interface (shared with the sharded server) -------------

    @property
    def covers_stored(self) -> int:
        """Rows in the ``model_cover`` table."""
        return len(self.db.table("model_cover"))

    @property
    def sealed_windows_total(self) -> int:
        """Sealed raw-tuple windows in the database."""
        if self.db.partition_h is None:
            return 0
        return len(self.db.sealed_window_ids())

    def has_data(self) -> bool:
        return self.db.raw_count() > 0


class ShardedEnviroMeterServer:
    """A fleet of per-region EnviroMeter servers behind one front door.

    One :class:`EnviroMeterServer` (own database, own cover builder) per
    cell of a :class:`~repro.geo.region.RegionGrid`.  Ingest routes every
    tuple to its owning shard only, so an ingest batch invalidates cover
    caches on exactly the shards (and windows) it touched — the other
    regions' covers, caches and sealed windows are untouched, which is
    what keeps city-scale ingest from stampeding every region's builder.

    Requests carry a position, so dispatch is a grid lookup: the owning
    shard answers from its regional covers.  A query landing in a region
    with no data yet falls over to the nearest shard that has some (by
    region-centre distance) — a cold region should degrade to its
    neighbour's model, not to an error.
    """

    def __init__(
        self,
        grid: "RegionGrid",
        h: int = 240,
        config: Optional[AdKMNConfig] = None,
        validity_horizon_s: float = 4.0 * 3600.0,
    ) -> None:
        self.grid = grid
        self.h = h
        self.shards = [
            EnviroMeterServer(
                h=h, config=config, validity_horizon_s=validity_horizon_s
            )
            for _ in range(grid.n_regions)
        ]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # -- ingestion ----------------------------------------------------------

    def ingest(self, batch: TupleBatch) -> int:
        """Route a batch's tuples to their owning shards (order-preserving
        within each shard) and ingest each sub-batch exactly once."""
        if not len(batch):
            return 0
        owners = self.grid.shards_of(batch.x, batch.y)
        total = 0
        for s in np.unique(owners):
            total += self.shards[int(s)].ingest(batch.select_mask(owners == s))
        return total

    # -- request dispatch ----------------------------------------------------

    def _shard_index_for(self, x: float, y: float) -> int:
        owner = self.grid.shard_of(x, y)
        if self.shards[owner].has_data():
            return owner
        candidates = [
            s for s, server in enumerate(self.shards) if server.has_data()
        ]
        if not candidates:
            raise RuntimeError("sharded server has no data")
        return min(
            candidates,
            key=lambda s: euclidean(*self.grid.region(s).bounds.center, x, y),
        )

    def _shard_for(self, x: float, y: float) -> EnviroMeterServer:
        return self.shards[self._shard_index_for(x, y)]

    def handle(
        self, request: Union[QueryRequest, ModelRequest]
    ) -> Union[ValueResponse, ModelCoverResponse]:
        """Dispatch one request to the shard owning its position."""
        if not isinstance(request, (QueryRequest, ModelRequest)):
            raise TypeError(f"server cannot handle {type(request).__name__}")
        return self._shard_for(request.x, request.y).handle(request)

    def handle_many(
        self, requests: Sequence[Union[QueryRequest, ModelRequest]]
    ) -> List[Union[ValueResponse, ModelCoverResponse]]:
        """Batch dispatch: group by owning shard, answer each group
        through the shard's vectorised ``handle_many``, scatter back in
        request order.  Ownership is resolved once for the whole batch
        (one vectorised grid lookup); only requests landing on a cold
        shard pay the per-request nearest-populated fallback."""
        responses: List[Optional[Union[ValueResponse, ModelCoverResponse]]] = [
            None
        ] * len(requests)
        if not requests:
            return []
        for request in requests:
            if not isinstance(request, (QueryRequest, ModelRequest)):
                raise TypeError(f"server cannot handle {type(request).__name__}")
        owners = self.grid.shards_of(
            np.array([r.x for r in requests]), np.array([r.y for r in requests])
        )
        groups: dict = {}
        for s in np.unique(owners):
            members = [int(i) for i in np.flatnonzero(owners == s)]
            if self.shards[int(s)].has_data():
                groups.setdefault(int(s), []).extend(members)
            else:
                for i in members:  # cold region: nearest populated shard
                    target = self._shard_index_for(requests[i].x, requests[i].y)
                    groups.setdefault(target, []).append(i)
        for s, members in groups.items():
            answers = self.shards[s].handle_many([requests[i] for i in members])
            for i, answer in zip(members, answers):
                responses[i] = answer
        return responses  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------

    @property
    def served_values(self) -> int:
        return sum(s.served_values for s in self.shards)

    @property
    def served_covers(self) -> int:
        return sum(s.served_covers for s in self.shards)

    @property
    def builder_fit_count(self) -> int:
        return sum(s.builder_fit_count for s in self.shards)

    @property
    def covers_stored(self) -> int:
        return sum(s.covers_stored for s in self.shards)

    @property
    def sealed_windows_total(self) -> int:
        return sum(s.sealed_windows_total for s in self.shards)

    def has_data(self) -> bool:
        return any(s.has_data() for s in self.shards)

    def shard_raw_counts(self) -> List[int]:
        """Raw-tuple count per shard database."""
        return [s.db.raw_count() for s in self.shards]
