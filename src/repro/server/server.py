"""The EnviroMeter server.

Owns the database (raw tuples + model covers), maintains covers lazily
(a window's cover is fitted on first demand and reused until the stream
moves past the window — the paper's "lazy update policies"), and serves
the two request types of Figure 3:

* a :class:`~repro.network.messages.QueryRequest` is answered with the
  interpolated value (the baseline path, and the app's point-query mode);
* a :class:`~repro.network.messages.ModelRequest` is answered with the
  current window's serialized cover — coefficients, centroids and the
  validity horizon ``t_n`` (the model-cache path, Section 2.3).

Concurrency: every request (or request batch) is answered against one
pinned epoch-stamped :class:`~repro.storage.engine.StorageSnapshot`, so
any number of reader threads may call ``handle``/``handle_many`` while a
writer ingests — answers are byte-identical to what a serial server
holding the same snapshot would produce, and ``handle_with_epoch``
exposes which epoch that was.  Writers (ingest, cover fits/stores)
serialise on the server lock; the query evaluation itself (processor
``process``/``process_batch``) runs outside any lock.
:class:`ConcurrentEnviroMeterServer` adds a worker pool on top, fanning
request batches across threads.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.adkmn import AdKMNConfig
from repro.core.builder import CoverBuilder
from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple, TupleBatch
from repro.geo.coords import euclidean
from repro.geo.region import RegionGrid
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)
from repro.query.base import QueryBatch
from repro.query.executor import BatchExecutor, split_chunks
from repro.query.modelcover import ModelCoverProcessor
from repro.query.pipeline.binding import ServerSnapshotBinding
from repro.query.pipeline.cache import CacheStats, ProcessorCache
from repro.query.pipeline.executor import PlanExecutor, PlanRuntime, build_group_plan
from repro.query.pipeline.plan import VECTORISED_POLICY
from repro.storage.engine import Database, StorageSnapshot

Request = Union[QueryRequest, ModelRequest]
Response = Union[ValueResponse, ModelCoverResponse]

DEFAULT_COVER_CACHE_CAPACITY = 256
"""Bound on the per-server deserialized-cover memo (epoch-keyed LRU).

One live entry per window the server recently served; generous enough
that a month of 4-hour windows stays resident, bounded so a long-running
server sweeping years of history cannot accrete covers forever."""


class EnviroMeterServer:
    """Server side of the EnviroMeter platform."""

    def __init__(
        self,
        h: int = 240,
        config: Optional[AdKMNConfig] = None,
        database: Optional[Database] = None,
        validity_horizon_s: float = 4.0 * 3600.0,
    ) -> None:
        """``validity_horizon_s`` is how far past its window's data a
        served cover is declared valid (its ``t_n``).  The default of four
        hours matches the paper's largest evaluation window; the cache-TTL
        ablation sweeps it."""
        self.db = database or Database.for_enviro_meter(partition_h=h)
        if self.db.partition_h is None:
            # e.g. a database loaded from a pre-partitioning (v1) file:
            # adopt the server's windowing so stale-cover invalidation
            # tracks the same windows the builder fits.
            self.db.set_partition_h(h)
        elif self.db.partition_h != h:
            raise ValueError(
                f"database partition_h={self.db.partition_h} does not match "
                f"server h={h}: stale-cover invalidation would track the "
                f"wrong windows"
            )
        self.h = h
        self.validity_horizon_s = validity_horizon_s
        self._builder = CoverBuilder(
            h, config=config, mode="count", validity_margin_s=validity_horizon_s
        )
        # Serialises writers (ingest, cover fit/store) and guards the
        # builder cache; the served-counter lock is separate so counter
        # bumps never contend with a running fit.
        self._lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._snapshot: Optional[StorageSnapshot] = None
        # window c -> content stamp of the cover currently indexed in the
        # model_cover table (the epoch the fit saw); used to decide
        # whether a stored blob matches a snapshot's window content.
        self._cover_stamps: Dict[int, int] = {}
        # The serving memo — ("cover", c) -> deserialized cover at the
        # window's content stamp — now one epoch-keyed ProcessorCache, so
        # repeated requests never re-read or re-deserialize a blob under
        # the lock, stale entries are superseded on growth, and the memo
        # is bounded with uniform hit/miss/evict/stale counters.
        self._covers = ProcessorCache(DEFAULT_COVER_CACHE_CAPACITY)
        self._served_covers = 0
        self._served_values = 0
        self._subscriptions = None

    # -- ingestion ----------------------------------------------------------

    def ingest(self, batch: TupleBatch) -> int:
        """Append community-sensed tuples.

        Incremental: the pinned stream snapshot is refreshed in place
        (zero-copy — the new snapshot extends the old one's storage), and
        only the cover caches of the windows the new tuples actually
        touched are invalidated.  Sealed windows keep their covers.
        Safe to call from a writer thread while readers serve queries:
        in-flight requests keep answering against the snapshot they
        pinned at dispatch."""
        with self._lock:
            n = self.db.ingest_tuples(batch)
            self._builder.invalidate_many(self.db.last_touched_windows)
            self._snapshot = self.db.snapshot()
        if n and self._subscriptions is not None:
            self._subscriptions.notify_ingest()
        return n

    def snapshot(self) -> StorageSnapshot:
        """The current epoch-stamped snapshot (refreshed on ingest)."""
        snap = self._snapshot
        if snap is not None and len(snap) == self.db.raw_count():
            return snap
        with self._lock:
            snap = self._snapshot
            if snap is None or len(snap) != self.db.raw_count():
                snap = self.db.snapshot()
                self._snapshot = snap
            return snap

    @property
    def epoch(self) -> int:
        """The database ingest epoch (see :meth:`Database.epoch`)."""
        return self.db.epoch

    def _tuples(self) -> TupleBatch:
        return self.snapshot().batch

    # -- cover maintenance ----------------------------------------------------

    def windows_for(self, ts: Sequence[float]) -> np.ndarray:
        """Window index per query timestamp, in one vectorized search."""
        return self.snapshot().windows_for_times(ts)

    def current_window(self, t: float) -> int:
        """Latest complete-or-current window at time ``t``."""
        return int(self.windows_for((t,))[0])

    def cover_for(self, t: float) -> ModelCover:
        """The model cover responsible for time ``t`` (fitted lazily and
        persisted into the ``model_cover`` table on first fit)."""
        snap = self.snapshot()
        c = int(snap.windows_for_times((t,))[0])
        return self._cover_for(c, snap)

    def _cover_for(self, c: int, snap: StorageSnapshot) -> ModelCover:
        """The cover for window ``c`` *as of the pinned snapshot*.

        The fit/lookup runs under the server lock (so concurrent readers
        never fit the same window twice and never race the writer), but
        the returned cover is evaluated outside it.  A fitted cover is
        only published to the ``model_cover`` table while its window
        still holds exactly the snapshot's data — a fit that lost a race
        with ingest still answers *this* query (correct for its epoch)
        but is not stored, so no future reader at a newer epoch can be
        served the stale cover.
        """
        stamp = snap.window_epoch(c)
        with self._lock:
            memo = self._covers.lookup(("cover", c), stamp)
            if memo is not None:
                return memo
            if self._builder.cached(c, stamp) is None:
                stored = self.db.cover_blob_for_window(c)
                if stored is not None and self._cover_stamps.get(c, stamp) == stamp:
                    # Either the stamp matches, or the blob predates this
                    # server (a loaded database, no recorded stamp): the
                    # cover index only ever holds covers whose window has
                    # not grown since the fit, so adopt it.
                    self._cover_stamps[c] = stamp
                    cover = ModelCover.from_blob(stored[2])
                    self._covers.insert(("cover", c), stamp, cover)
                    return cover
            result = self._builder.build(snap.batch, c, stamp=stamp)
            if (
                self.db.window_epoch(c) == stamp
                and self._cover_stamps.get(c) != stamp
            ):
                self.db.store_cover_blob(
                    c, result.cover.valid_until, result.cover.to_blob()
                )
                self._cover_stamps[c] = stamp
            self._covers.insert(("cover", c), stamp, result.cover)
            return result.cover

    # -- request handling -------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Dispatch one client request (thread-safe)."""
        return self._handle_pinned(request, self.snapshot())

    def handle_with_epoch(self, request: Request) -> Tuple[Response, int]:
        """Like :meth:`handle`, also reporting the snapshot epoch the
        answer was computed at — the hook the concurrency harness uses to
        compare every concurrent answer against a serial replay."""
        snap = self.snapshot()
        return self._handle_pinned(request, snap), snap.epoch

    def _handle_pinned(self, request: Request, snap: StorageSnapshot) -> Response:
        if isinstance(request, QueryRequest):
            return self._handle_query(request, snap)
        if isinstance(request, ModelRequest):
            return self._handle_model_request(request, snap)
        raise TypeError(f"server cannot handle {type(request).__name__}")

    def handle_many(self, requests: Sequence[Request]) -> List[Response]:
        """Dispatch a batch of requests, answering queries vectorised.

        Query requests are grouped by the window responsible for their
        timestamp; each group is answered by one ``process_batch`` call
        against that window's cover — one cover lookup and one vectorised
        evaluation per group instead of one of each per request.  Model
        requests ride along through the scalar path.  Responses come back
        in request order.  The whole batch is answered against a single
        pinned snapshot, so all its answers share one epoch.
        """
        return self.handle_many_with_epoch(requests)[0]

    def handle_many_with_epoch(
        self, requests: Sequence[Request]
    ) -> Tuple[List[Response], int]:
        """:meth:`handle_many` plus the pinned snapshot epoch."""
        snap = self.snapshot()
        responses: List[Optional[Response]] = [None] * len(requests)
        query_positions: List[int] = []
        for i, request in enumerate(requests):
            if isinstance(request, QueryRequest):
                query_positions.append(i)
            else:
                responses[i] = self._handle_pinned(request, snap)
        if query_positions:
            # Compile the batch's queries into one scatter-shaped plan
            # against the pinned snapshot (one cover op per responsible
            # window, each answered by a single vectorised process_batch
            # call) and run it through the shared pipeline executor.
            batch = QueryBatch(
                np.array([requests[i].t for i in query_positions]),
                np.array([requests[i].x for i in query_positions]),
                np.array([requests[i].y for i in query_positions]),
            )
            result = self.execute_plan(batch, snap)
            for k, i in enumerate(query_positions):
                value = (
                    float(result.values[k]) if result.answered[k] else math.nan
                )
                responses[i] = ValueResponse(t=requests[i].t, value=value)
            with self._stats_lock:
                self._served_values += len(query_positions)
        return responses, snap.epoch  # type: ignore[return-value]

    def execute_plan(self, batch: QueryBatch, snap: StorageSnapshot):
        """Answer a columnar query batch through the plan pipeline.

        Builds one cover op per responsible window, bound to the pinned
        snapshot; covers materialise through :meth:`_cover_for` (the
        epoch-keyed memo plus the lazy fit-and-store policy).
        """
        binding = ServerSnapshotBinding(snap)
        plan = build_group_plan(binding, batch, "model-cover", VECTORISED_POLICY)
        runtime = PlanRuntime(
            binding,
            processor=lambda op, bound: ModelCoverProcessor(
                self._cover_for(op.context.window_c, snap)
            ),
        )
        return PlanExecutor(runtime).execute(plan)

    def _handle_query(
        self, request: QueryRequest, snap: StorageSnapshot
    ) -> ValueResponse:
        c = int(snap.windows_for_times((request.t,))[0])
        cover = self._cover_for(c, snap)
        proc = ModelCoverProcessor(cover)
        result = proc.process(QueryTuple(t=request.t, x=request.x, y=request.y))
        with self._stats_lock:
            self._served_values += 1
        value = result.value if result.value is not None else math.nan
        return ValueResponse(t=request.t, value=value)

    def _handle_model_request(
        self, request: ModelRequest, snap: StorageSnapshot
    ) -> ModelCoverResponse:
        c = int(snap.windows_for_times((request.t,))[0])
        cover = self._cover_for(c, snap)
        with self._stats_lock:
            self._served_covers += 1
        return ModelCoverResponse(blob=cover.to_blob())

    # -- standing subscriptions ----------------------------------------------

    @property
    def subscriptions(self):
        """The server's lazily created
        :class:`~repro.query.subscriptions.SubscriptionRegistry` (ingest
        notifies it so pollers and push bridges wake up)."""
        if self._subscriptions is None:
            from repro.query.subscriptions import registry_for

            self._subscriptions = registry_for(self)
        return self._subscriptions

    def subscribe(
        self,
        route,
        t_start: float,
        interval_s: float = 60.0,
        count: int = 30,
    ):
        """Register a standing continuous query (model-cover answers);
        returns the :class:`~repro.query.subscriptions.Subscription`,
        whose ``initial`` update holds the full answer at registration."""
        return self.subscriptions.subscribe(
            route, t_start, interval_s=interval_s, count=count
        )

    def poll_updates(self, sub_id: int, maintain: bool = True):
        """Drain a subscription's queued delta updates, running one
        epoch-delta maintenance pass first by default."""
        return self.subscriptions.poll(sub_id, maintain=maintain)

    # -- introspection -------------------------------------------------------------

    @property
    def served_values(self) -> int:
        return self._served_values

    @property
    def served_covers(self) -> int:
        return self._served_covers

    @property
    def builder_fit_count(self) -> int:
        """How many times the cover fitter actually ran (cache misses)."""
        return self._builder.fit_count

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/evict/stale counters of the cover memo (live view) —
        the uniform counter block every server front end exposes."""
        return self._covers.stats

    @property
    def cover_cache(self) -> ProcessorCache:
        """The epoch-keyed deserialized-cover cache."""
        return self._covers

    # -- replay-stats interface (shared with the sharded server) -------------

    @property
    def covers_stored(self) -> int:
        """Rows in the ``model_cover`` table."""
        return len(self.db.table("model_cover"))

    @property
    def sealed_windows_total(self) -> int:
        """Sealed raw-tuple windows in the database."""
        if self.db.partition_h is None:
            return 0
        return len(self.db.sealed_window_ids())

    def has_data(self) -> bool:
        return self.db.raw_count() > 0


class ShardedEnviroMeterServer:
    """A fleet of per-region EnviroMeter servers behind one front door.

    One :class:`EnviroMeterServer` (own database, own cover builder) per
    cell of a :class:`~repro.geo.region.RegionGrid`.  Ingest routes every
    tuple to its owning shard only, so an ingest batch invalidates cover
    caches on exactly the shards (and windows) it touched — the other
    regions' covers, caches and sealed windows are untouched, which is
    what keeps city-scale ingest from stampeding every region's builder.

    Requests carry a position, so dispatch is a grid lookup: the owning
    shard answers from its regional covers.  A query landing in a region
    with no data yet falls over to the nearest shard that has some (by
    region-centre distance) — a cold region should degrade to its
    neighbour's model, not to an error.

    Ingest fans the per-shard sub-batches across a worker pool — shards
    are independent stores behind their own write locks, so routing is
    the only serial step — while readers keep serving against the
    snapshots their requests pinned.  ``max_workers`` caps that pool
    (default: one worker per CPU).
    """

    def __init__(
        self,
        grid: "RegionGrid",
        h: int = 240,
        config: Optional[AdKMNConfig] = None,
        validity_horizon_s: float = 4.0 * 3600.0,
        max_workers: Optional[int] = None,
    ) -> None:
        self.grid = grid
        self.h = h
        self.shards = [
            EnviroMeterServer(
                h=h, config=config, validity_horizon_s=validity_horizon_s
            )
            for _ in range(grid.n_regions)
        ]
        self._executor = BatchExecutor(max_workers=max_workers)
        self._ingest_lock = threading.Lock()
        self._epoch = 0
        self._subscriptions = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def epoch(self) -> int:
        """Monotone ingest epoch: +1 per non-empty :meth:`ingest` call —
        the sharded analogue of :meth:`EnviroMeterServer.epoch` (one
        counter for the whole fleet, since a batch may touch several
        shards)."""
        return self._epoch

    def close(self) -> None:
        """Release the parallel-ingest worker pool (idempotent)."""
        self._executor.shutdown()

    # -- ingestion ----------------------------------------------------------

    def ingest(self, batch: TupleBatch) -> int:
        """Route a batch's tuples to their owning shards (order-preserving
        within each shard) and ingest each sub-batch exactly once, in
        parallel across shards.

        Writers serialise on the ingest lock, so the fleet moves from one
        epoch-consistent state to the next batch by batch; within a
        batch, the per-shard appends are independent (each shard has its
        own database and write lock) and fan out across the pool."""
        if not len(batch):
            return 0
        owners = self.grid.shards_of(batch.x, batch.y)
        with self._ingest_lock:
            parts = [
                (int(s), batch.select_mask(owners == s)) for s in np.unique(owners)
            ]
            delivered = self._executor.map(
                lambda part: self.shards[part[0]].ingest(part[1]), parts
            )
            self._epoch += 1
        if self._subscriptions is not None:
            self._subscriptions.notify_ingest()
        return sum(delivered)

    # -- standing subscriptions ----------------------------------------------

    @property
    def subscriptions(self):
        """The fleet-wide subscription registry (see
        :attr:`EnviroMeterServer.subscriptions`); maintenance pins one
        storage snapshot per populated shard, and cold-region
        subscriptions follow the nearest-populated fallback until their
        own region gets data."""
        if self._subscriptions is None:
            from repro.query.subscriptions import registry_for

            self._subscriptions = registry_for(self)
        return self._subscriptions

    def subscribe(
        self,
        route,
        t_start: float,
        interval_s: float = 60.0,
        count: int = 30,
    ):
        """Register a standing continuous query against the fleet."""
        return self.subscriptions.subscribe(
            route, t_start, interval_s=interval_s, count=count
        )

    def poll_updates(self, sub_id: int, maintain: bool = True):
        """Drain a subscription's queued delta updates."""
        return self.subscriptions.poll(sub_id, maintain=maintain)

    # -- request dispatch ----------------------------------------------------

    def _shard_index_for(self, x: float, y: float) -> int:
        owner = self.grid.shard_of(x, y)
        if self.shards[owner].has_data():
            return owner
        candidates = [
            s for s, server in enumerate(self.shards) if server.has_data()
        ]
        if not candidates:
            raise RuntimeError("sharded server has no data")
        return min(
            candidates,
            key=lambda s: euclidean(*self.grid.region(s).bounds.center, x, y),
        )

    def _shard_for(self, x: float, y: float) -> EnviroMeterServer:
        return self.shards[self._shard_index_for(x, y)]

    def handle(
        self, request: Union[QueryRequest, ModelRequest]
    ) -> Union[ValueResponse, ModelCoverResponse]:
        """Dispatch one request to the shard owning its position."""
        if not isinstance(request, (QueryRequest, ModelRequest)):
            raise TypeError(f"server cannot handle {type(request).__name__}")
        return self._shard_for(request.x, request.y).handle(request)

    def handle_with_epoch(self, request: Request) -> Tuple[Response, int]:
        """Like :meth:`handle`, also reporting the fleet epoch the answer
        was computed at.  Exact whenever no ingest overlaps the call
        (e.g. the harness's phase-separated schedules); under overlapping
        ingest the reported epoch is the fleet epoch at dispatch."""
        epoch = self._epoch
        return self.handle(request), epoch

    def handle_many(
        self, requests: Sequence[Union[QueryRequest, ModelRequest]]
    ) -> List[Union[ValueResponse, ModelCoverResponse]]:
        """Batch dispatch: group by owning shard, answer each group
        through the shard's vectorised ``handle_many``, scatter back in
        request order.  Ownership is resolved once for the whole batch
        (one vectorised grid lookup); only requests landing on a cold
        shard pay the per-request nearest-populated fallback."""
        responses: List[Optional[Union[ValueResponse, ModelCoverResponse]]] = [
            None
        ] * len(requests)
        if not requests:
            return []
        for request in requests:
            if not isinstance(request, (QueryRequest, ModelRequest)):
                raise TypeError(f"server cannot handle {type(request).__name__}")
        owners = self.grid.shards_of(
            np.array([r.x for r in requests]), np.array([r.y for r in requests])
        )
        groups: dict = {}
        for s in np.unique(owners):
            members = [int(i) for i in np.flatnonzero(owners == s)]
            if self.shards[int(s)].has_data():
                groups.setdefault(int(s), []).extend(members)
            else:
                for i in members:  # cold region: nearest populated shard
                    target = self._shard_index_for(requests[i].x, requests[i].y)
                    groups.setdefault(target, []).append(i)
        for s, members in groups.items():
            answers = self.shards[s].handle_many([requests[i] for i in members])
            for i, answer in zip(members, answers):
                responses[i] = answer
        return responses  # type: ignore[return-value]

    def handle_many_with_epoch(
        self, requests: Sequence[Request]
    ) -> Tuple[List[Response], int]:
        """:meth:`handle_many` plus the fleet epoch at dispatch (exact
        when no ingest overlaps the call, as in phase-separated runs)."""
        epoch = self._epoch
        return self.handle_many(requests), epoch

    # -- introspection -------------------------------------------------------

    @property
    def served_values(self) -> int:
        return sum(s.served_values for s in self.shards)

    @property
    def served_covers(self) -> int:
        return sum(s.served_covers for s in self.shards)

    @property
    def builder_fit_count(self) -> int:
        return sum(s.builder_fit_count for s in self.shards)

    @property
    def cache_stats(self) -> CacheStats:
        """Fleet-wide cover-memo counters (sum over shard servers)."""
        return CacheStats.aggregate(s.cache_stats for s in self.shards)

    @property
    def covers_stored(self) -> int:
        return sum(s.covers_stored for s in self.shards)

    @property
    def sealed_windows_total(self) -> int:
        return sum(s.sealed_windows_total for s in self.shards)

    def has_data(self) -> bool:
        return any(s.has_data() for s in self.shards)

    def shard_raw_counts(self) -> List[int]:
        """Raw-tuple count per shard database."""
        return [s.db.raw_count() for s in self.shards]


class ConcurrentEnviroMeterServer:
    """A thread-pooled front door over a thread-safe EnviroMeter server.

    Wraps an :class:`EnviroMeterServer` or
    :class:`ShardedEnviroMeterServer` and serves ``handle_many`` batches
    from ``max_workers`` worker threads: the batch is split into
    contiguous chunks, each chunk answered by the inner server's
    vectorised ``handle_many`` on its own worker, while ingest (called
    from any writer thread) proceeds under the inner server's write
    locks.  With an :class:`EnviroMeterServer` inner, each chunk pins one
    storage snapshot, so every answer is byte-identical to a serial
    server at that chunk's reported epoch — ``handle_many_with_epochs``
    reports the per-request epochs for the concurrency harness to replay
    against.  A :class:`ShardedEnviroMeterServer` inner pins snapshots
    per shard, not fleet-wide, so its reported epoch is exact only while
    no ingest overlaps the chunk (see
    :meth:`ShardedEnviroMeterServer.handle_many_with_epoch`).

    The wrapper adds no state of its own beyond the pool, so any mix of
    threads may share one instance; single requests bypass the pool.
    """

    def __init__(
        self,
        server: Union[EnviroMeterServer, ShardedEnviroMeterServer],
        max_workers: Optional[int] = None,
    ) -> None:
        self.inner = server
        self._executor = BatchExecutor(max_workers=max_workers)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (idempotent; recreated on demand)."""
        self._executor.shutdown()

    def __enter__(self) -> "ConcurrentEnviroMeterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def ingest(self, batch: TupleBatch) -> int:
        """Forward to the inner server (safe from any writer thread)."""
        return self.inner.ingest(batch)

    def handle(self, request: Request) -> Response:
        return self.inner.handle(request)

    def handle_with_epoch(self, request: Request) -> Tuple[Response, int]:
        return self.inner.handle_with_epoch(request)

    def handle_many_with_epoch(
        self, requests: Sequence[Request]
    ) -> Tuple[List[Response], int]:
        """One batch on the *calling* thread, pinned to a single epoch —
        for callers that are themselves worker threads (a client-session
        loop); :meth:`handle_many_with_epochs` is the pool-fanned form."""
        return self.inner.handle_many_with_epoch(requests)

    def handle_many(self, requests: Sequence[Request]) -> List[Response]:
        """Answer a request batch across the worker pool, in order."""
        return self.handle_many_with_epochs(requests)[0]

    def handle_many_with_epochs(
        self, requests: Sequence[Request]
    ) -> Tuple[List[Response], np.ndarray]:
        """:meth:`handle_many` plus the snapshot epoch per request.

        Requests within one chunk share an epoch; chunks dispatched while
        a writer ingests may legitimately observe different epochs."""
        if not requests:
            return [], np.empty(0, dtype=np.int64)
        chunks = split_chunks(list(requests), self._executor.workers_for(len(requests)))
        parts = self._executor.map(self.inner.handle_many_with_epoch, chunks)
        responses: List[Response] = []
        epochs = np.empty(len(requests), dtype=np.int64)
        pos = 0
        for chunk, (answers, epoch) in zip(chunks, parts):
            responses.extend(answers)
            epochs[pos : pos + len(chunk)] = epoch
            pos += len(chunk)
        return responses, epochs

    # -- standing subscriptions (delegated to the inner server) ---------------

    @property
    def subscriptions(self):
        return self.inner.subscriptions

    def subscribe(
        self,
        route,
        t_start: float,
        interval_s: float = 60.0,
        count: int = 30,
    ):
        return self.inner.subscribe(
            route, t_start, interval_s=interval_s, count=count
        )

    def poll_updates(self, sub_id: int, maintain: bool = True):
        return self.inner.poll_updates(sub_id, maintain=maintain)

    # -- introspection (replay-stats interface) ------------------------------

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    @property
    def served_values(self) -> int:
        return self.inner.served_values

    @property
    def served_covers(self) -> int:
        return self.inner.served_covers

    @property
    def builder_fit_count(self) -> int:
        return self.inner.builder_fit_count

    @property
    def cache_stats(self) -> CacheStats:
        """The inner server's uniform cover-memo counter block."""
        return self.inner.cache_stats

    @property
    def covers_stored(self) -> int:
        return self.inner.covers_stored

    @property
    def sealed_windows_total(self) -> int:
        return self.inner.sealed_windows_total

    def has_data(self) -> bool:
        return self.inner.has_data()
